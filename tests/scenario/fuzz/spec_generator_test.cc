// The generator's contract: every sample across the whole envelope is a
// valid, buildable scenario, the stream is a pure function of
// (seed, index), and the envelope actually reaches the corners it
// advertises (collusion, adaptive adversaries, composed phases, all three
// topologies) — a fuzzer that only emits bland specs finds nothing.

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/fuzz/spec_generator.h"

namespace dgt {
namespace {

constexpr uint64_t kEnvelopeSamples = 160;

TEST(SpecGeneratorTest, EverySampleValidatesAndBuilds) {
  const SpecGenerator generator(FuzzProfile{});
  for (uint64_t index = 0; index < kEnvelopeSamples; ++index) {
    const GeneratedScenario scenario = generator.Generate(index);
    const Status status =
        ValidateScenarioSpec(scenario.spec, scenario.graph.num_nodes);
    ASSERT_TRUE(status.ok())
        << scenario.name << ": " << status.ToString();
    const Result<Graph> graph = BuildGraph(scenario.graph);
    ASSERT_TRUE(graph.ok()) << scenario.name << ": "
                            << graph.status().ToString();
    EXPECT_EQ(graph->num_nodes(), scenario.graph.num_nodes);
    EXPECT_EQ(scenario.spec.profiles.size(), scenario.graph.num_nodes);
    EXPECT_EQ(scenario.index, index);
    EXPECT_EQ(scenario.name.find(' '), std::string::npos)
        << "names must be serializable tokens";
  }
}

TEST(SpecGeneratorTest, GenerationIsAPureFunctionOfSeedAndIndex) {
  FuzzProfile profile;
  profile.seed = 99;
  const SpecGenerator a(profile);
  const SpecGenerator b(profile);
  // a is queried forward, b backward: per-index results must not depend
  // on the call sequence (the property sweep workers rely on).
  std::vector<GeneratedScenario> forward;
  for (uint64_t index = 0; index < 12; ++index) {
    forward.push_back(a.Generate(index));
  }
  for (uint64_t index = 12; index-- > 0;) {
    const GeneratedScenario& left = forward[index];
    const GeneratedScenario right = b.Generate(index);
    EXPECT_EQ(left.name, right.name);
    EXPECT_EQ(left.graph.num_nodes, right.graph.num_nodes);
    EXPECT_EQ(left.graph.seed, right.graph.seed);
    EXPECT_EQ(left.spec.seed, right.spec.seed);
    EXPECT_EQ(left.spec.num_rounds, right.spec.num_rounds);
    EXPECT_EQ(left.spec.phases.size(), right.spec.phases.size());
    EXPECT_EQ(left.spec.serve_threshold, right.spec.serve_threshold);
  }
  // Different seeds diverge.
  FuzzProfile other = profile;
  other.seed = 100;
  EXPECT_NE(SpecGenerator(other).Generate(0).spec.seed,
            a.Generate(0).spec.seed);
}

TEST(SpecGeneratorTest, EnvelopeReachesItsAdvertisedCorners) {
  const SpecGenerator generator(FuzzProfile{});
  uint64_t with_collusion = 0;
  uint64_t with_adaptive = 0;
  uint64_t with_free_riders = 0;
  uint64_t with_lifecycle = 0;
  uint64_t with_composed_phase = 0;
  std::set<FuzzTopology> topologies;
  for (uint64_t index = 0; index < kEnvelopeSamples; ++index) {
    const GeneratedScenario scenario = generator.Generate(index);
    topologies.insert(scenario.graph.topology);
    if (scenario.spec.collusion) ++with_collusion;
    if (scenario.spec.lifecycle_enabled) ++with_lifecycle;
    for (const PeerProfile& profile : scenario.spec.profiles) {
      if (profile.strategy == PeerStrategy::kFreeRider) {
        ++with_free_riders;
        break;
      }
    }
    for (const ScenarioPhase& phase : scenario.spec.phases) {
      if (phase.adaptive_collusion) ++with_adaptive;
      int features = (phase.collusion_active ? 1 : 0) +
                     (phase.packet_loss_prob > 0.0 ? 1 : 0) +
                     (phase.churn_fraction > 0.0 ? 1 : 0) +
                     (phase.whitewashing_active ? 1 : 0);
      if (features >= 2) ++with_composed_phase;
    }
  }
  EXPECT_EQ(topologies.size(), 3u) << "all three topologies sampled";
  EXPECT_GT(with_collusion, kEnvelopeSamples / 4);
  EXPECT_GT(with_free_riders, kEnvelopeSamples / 4);
  EXPECT_GT(with_lifecycle, kEnvelopeSamples / 8);
  EXPECT_GT(with_adaptive, 0u) << "adaptive adversaries never sampled";
  EXPECT_GT(with_composed_phase, 0u)
      << "overlapping windows never composed into one phase";
}

TEST(SpecGeneratorTest, ColluderProfilesAlwaysMatchThePlan) {
  const SpecGenerator generator(FuzzProfile{});
  for (uint64_t index = 0; index < kEnvelopeSamples; ++index) {
    const GeneratedScenario scenario = generator.Generate(index);
    std::set<NodeId> from_profiles;
    for (NodeId id = 0; id < scenario.spec.profiles.size(); ++id) {
      if (scenario.spec.profiles[id].strategy == PeerStrategy::kColluder) {
        from_profiles.insert(id);
      }
    }
    std::set<NodeId> from_plan;
    if (scenario.spec.collusion) {
      from_plan.insert(scenario.spec.collusion->colluders.begin(),
                       scenario.spec.collusion->colluders.end());
    }
    EXPECT_EQ(from_profiles, from_plan) << scenario.name;
  }
}

TEST(SpecGeneratorTest, BuildGraphRejectsABrokenRecipe) {
  GraphSpec broken;
  broken.topology = FuzzTopology::kPreferentialAttachment;
  broken.num_nodes = 2;  // PA needs degree + 1
  broken.degree = 3;
  EXPECT_FALSE(BuildGraph(broken).ok());
}

}  // namespace
}  // namespace dgt
