// Seed determinism of generated scenarios end to end: the same
// (profile seed, index) must produce bit-identical round timelines and
// served reputation scores on every execution — the property that makes
// an archived failure index meaningful at all.

#include <vector>

#include "gtest/gtest.h"
#include "scenario/fuzz/spec_generator.h"
#include "scenario/fuzz/sweep_driver.h"

namespace dgt {
namespace {

void ExpectIdenticalOutcomes(const ScenarioOutcome& a,
                             const ScenarioOutcome& b) {
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();

  // Bit-identical per-round timeline, every class, every counter.
  ASSERT_EQ(a.report.rounds.size(), b.report.rounds.size());
  for (size_t r = 0; r < a.report.rounds.size(); ++r) {
    const RoundSnapshot& x = a.report.rounds[r];
    const RoundSnapshot& y = b.report.rounds[r];
    EXPECT_EQ(x.round, y.round);
    const ClassMetrics* xs[] = {&x.cooperative, &x.free_rider, &x.colluder,
                                &x.newcomer};
    const ClassMetrics* ys[] = {&y.cooperative, &y.free_rider, &y.colluder,
                                &y.newcomer};
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(xs[c]->requests, ys[c]->requests) << "round " << r;
      EXPECT_EQ(xs[c]->served, ys[c]->served) << "round " << r;
      EXPECT_EQ(xs[c]->refused, ys[c]->refused) << "round " << r;
      EXPECT_EQ(xs[c]->lost, ys[c]->lost) << "round " << r;
      EXPECT_EQ(xs[c]->uploads, ys[c]->uploads) << "round " << r;
      // satisfaction_sum is a float accumulation over an identical
      // sequence of identical terms: bit-equal, not just close.
      EXPECT_EQ(xs[c]->satisfaction_sum, ys[c]->satisfaction_sum)
          << "round " << r;
    }
  }

  // Bit-identical served scores.
  ASSERT_EQ(a.snapshot == nullptr, b.snapshot == nullptr);
  if (a.snapshot != nullptr) {
    EXPECT_EQ(a.snapshot->epoch, b.snapshot->epoch);
    ASSERT_EQ(a.snapshot->scores.size(), b.snapshot->scores.size());
    for (size_t i = 0; i < a.snapshot->scores.size(); ++i) {
      ASSERT_EQ(a.snapshot->scores[i].size(), b.snapshot->scores[i].size());
      for (size_t j = 0; j < a.snapshot->scores[i].size(); ++j) {
        EXPECT_EQ(a.snapshot->scores[i][j], b.snapshot->scores[i][j])
            << "score [" << i << "][" << j << "]";
      }
    }
  }

  // Per-phase RMS series (libm-heavy: still deterministic per machine).
  ASSERT_EQ(a.report.phases.size(), b.report.phases.size());
  for (size_t p = 0; p < a.report.phases.size(); ++p) {
    EXPECT_EQ(a.report.phases[p].rms, b.report.phases[p].rms) << p;
    EXPECT_EQ(a.report.phases[p].adaptive_suspends,
              b.report.phases[p].adaptive_suspends)
        << p;
    EXPECT_EQ(a.report.phases[p].adaptive_resumes,
              b.report.phases[p].adaptive_resumes)
        << p;
  }
}

TEST(FuzzDeterminismTest, RepeatedRunsAreBitIdentical) {
  FuzzProfile profile;
  profile.seed = 11;
  const SpecGenerator generator(profile);
  // A handful of envelope corners; index 0..3 cover different mixes by
  // construction of the counter-seeded stream.
  for (uint64_t index = 0; index < 4; ++index) {
    const GeneratedScenario scenario = generator.Generate(index);
    const ScenarioOutcome first = ExecuteScenario(scenario);
    const ScenarioOutcome second = ExecuteScenario(scenario);
    ExpectIdenticalOutcomes(first, second);
  }
}

TEST(FuzzDeterminismTest, RegeneratedSpecRunsIdentically) {
  // Generate -> run, then independently regenerate the same index with a
  // fresh generator and run again: identical, because generation is a
  // pure function and the runner seeds only from the spec.
  FuzzProfile profile;
  profile.seed = 23;
  const GeneratedScenario once = SpecGenerator(profile).Generate(7);
  const GeneratedScenario again = SpecGenerator(profile).Generate(7);
  ExpectIdenticalOutcomes(ExecuteScenario(once), ExecuteScenario(again));
}

}  // namespace
}  // namespace dgt
