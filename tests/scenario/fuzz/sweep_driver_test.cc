// The sweep harness end to end: a small all-green sweep, thread-count
// invariance of the whole summary, and the full failure pipeline — an
// injected invariant violation must be caught, greedily shrunk, archived
// as a spec file, and replay that file to the same violation.

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/fuzz/spec_text.h"
#include "scenario/fuzz/sweep_driver.h"

namespace dgt {
namespace {

FuzzProfile SmallProfile() {
  FuzzProfile profile;
  profile.seed = 5;
  profile.max_nodes = 32;
  profile.max_rounds = 20;
  return profile;
}

TEST(SweepDriverTest, SmallSweepPassesAndAggregates) {
  SweepOptions options;
  options.num_specs = 6;
  options.num_threads = 2;
  Result<SweepSummary> summary = RunSweep(SmallProfile(), options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->passed, 6u);
  EXPECT_EQ(summary->failed, 0u);
  ASSERT_EQ(summary->results.size(), 6u);
  for (size_t i = 0; i < summary->results.size(); ++i) {
    EXPECT_EQ(summary->results[i].index, i);
    EXPECT_TRUE(summary->results[i].passed());
    EXPECT_TRUE(summary->results[i].archive_path.empty());
  }
  EXPECT_GT(summary->total_requests, 0u);
  EXPECT_EQ(summary->total_served + summary->total_refused,
            summary->total_requests);
  for (uint64_t count : summary->violation_counts) {
    EXPECT_EQ(count, 0u);
  }
}

TEST(SweepDriverTest, SummaryIsIdenticalAtEveryThreadCount) {
  SweepOptions options;
  options.num_specs = 8;
  options.num_threads = 1;
  Result<SweepSummary> serial = RunSweep(SmallProfile(), options);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 4;
  Result<SweepSummary> threaded = RunSweep(SmallProfile(), options);
  ASSERT_TRUE(threaded.ok());

  EXPECT_EQ(serial->passed, threaded->passed);
  EXPECT_EQ(serial->failed, threaded->failed);
  EXPECT_EQ(serial->total_requests, threaded->total_requests);
  EXPECT_EQ(serial->total_served, threaded->total_served);
  EXPECT_EQ(serial->total_refused, threaded->total_refused);
  EXPECT_EQ(serial->total_lost, threaded->total_lost);
  EXPECT_EQ(serial->total_epochs, threaded->total_epochs);
  ASSERT_EQ(serial->results.size(), threaded->results.size());
  for (size_t i = 0; i < serial->results.size(); ++i) {
    EXPECT_EQ(serial->results[i].requests, threaded->results[i].requests)
        << i;
    EXPECT_EQ(serial->results[i].served, threaded->results[i].served) << i;
    EXPECT_EQ(serial->results[i].epochs, threaded->results[i].epochs) << i;
    EXPECT_EQ(serial->results[i].violations.size(),
              threaded->results[i].violations.size())
        << i;
  }
}

TEST(SweepDriverTest, InjectedViolationIsCaughtShrunkArchivedAndReplayed) {
  const std::string archive_dir =
      ::testing::TempDir() + "/dgt_sweep_archive";

  SweepOptions options;
  options.num_specs = 3;
  options.num_threads = 1;
  options.archive_dir = archive_dir;
  // The injected defect: an impossible service-rate floor. Every
  // scenario with any cooperative traffic violates it deterministically.
  options.invariants.cooperator_floor = 2.0;
  options.invariants.floor_min_requests = 1;

  Result<SweepSummary> summary = RunSweep(SmallProfile(), options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_GT(summary->failed, 0u);
  EXPECT_GT(summary->violation_counts[static_cast<size_t>(
                Invariant::kCooperatorFloor)],
            0u);

  const SpecResult* archived = nullptr;
  for (const SpecResult& result : summary->results) {
    if (!result.archive_path.empty()) {
      archived = &result;
      break;
    }
  }
  ASSERT_NE(archived, nullptr) << "no failure was archived";
  EXPECT_GT(archived->shrink_runs, 0u)
      << "shrinking never evaluated a candidate";

  // The archived spec is genuinely smaller than the original sample.
  const GeneratedScenario original =
      SpecGenerator(SmallProfile()).Generate(archived->index);
  Result<GeneratedScenario> shrunk = LoadSpec(archived->archive_path);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_LE(shrunk->spec.num_rounds, original.spec.num_rounds);
  EXPECT_LE(shrunk->graph.num_nodes, original.graph.num_nodes);
  EXPECT_LE(shrunk->spec.phases.size(), original.spec.phases.size());
  EXPECT_LT(shrunk->spec.num_rounds * shrunk->graph.num_nodes,
            original.spec.num_rounds * original.graph.num_nodes)
      << "shrink made no progress on an always-reproducing violation";

  // Replaying the archive reproduces the same invariant violation.
  Result<std::vector<InvariantViolation>> replay =
      ReplayArchivedSpec(archived->archive_path, options.invariants);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_FALSE(replay->empty());
  bool same_invariant = false;
  for (const InvariantViolation& violation : *replay) {
    same_invariant = same_invariant ||
                     violation.invariant == Invariant::kCooperatorFloor;
  }
  EXPECT_TRUE(same_invariant);

  // Under the real (possible) floor the very same archive is clean —
  // the violation lives in the oracle options, not the harness.
  Result<std::vector<InvariantViolation>> sane =
      ReplayArchivedSpec(archived->archive_path, InvariantOptions{});
  ASSERT_TRUE(sane.ok());
  EXPECT_TRUE(sane->empty());
}

TEST(SweepDriverTest, ArchiveToUnwritableDirectoryIsAHarnessError) {
  SweepOptions options;
  options.num_specs = 1;
  options.num_threads = 1;
  options.archive_dir = "/proc/definitely/not/writable";
  options.invariants.cooperator_floor = 2.0;
  options.invariants.floor_min_requests = 1;
  options.shrink_failures = false;  // keep the test fast
  Result<SweepSummary> summary = RunSweep(SmallProfile(), options);
  // Spec 0 must fail the injected floor; archiving it must error out.
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dgt
