// Each oracle gets a fabricated report that satisfies it and a minimally
// perturbed twin that violates it — the checker must flag exactly the
// perturbed field (an oracle that cannot fail gates nothing).

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/fuzz/invariant_checker.h"

namespace dgt {
namespace {

ClassMetrics Metrics(uint64_t requests, uint64_t served, uint64_t lost = 0) {
  ClassMetrics m;
  m.requests = requests;
  m.served = served;
  m.refused = requests - served;
  m.lost = lost;
  return m;
}

// A two-round, one-phase, gossip-free scenario whose report is fully
// consistent: per-round slices sum to the phase slice and to the totals.
struct Fixture {
  ScenarioSpec spec;
  ScenarioReport report;

  Fixture() {
    spec.profiles.assign(4, PeerProfile{});
    spec.num_rounds = 2;
    spec.gossip_every = 0;

    RoundSnapshot r1;
    r1.round = 1;
    r1.cooperative = Metrics(4, 3);
    r1.free_rider = Metrics(2, 1);
    RoundSnapshot r2;
    r2.round = 2;
    r2.cooperative = Metrics(4, 2, 1);
    r2.free_rider = Metrics(2, 0);
    report.rounds = {r1, r2};

    ScenarioPhaseReport phase;
    phase.name = "all";
    phase.start_round = 1;
    phase.end_round = 2;
    phase.cooperative = Metrics(8, 5, 1);
    phase.free_rider = Metrics(4, 1);
    report.phases = {phase};

    report.cooperative = Metrics(8, 5, 1);
    report.free_rider = Metrics(4, 1);
  }
};

std::vector<Invariant> Kinds(const std::vector<InvariantViolation>& v) {
  std::vector<Invariant> kinds;
  for (const InvariantViolation& violation : v) {
    kinds.push_back(violation.invariant);
  }
  return kinds;
}

TEST(InvariantCheckerTest, ConsistentReportPasses) {
  Fixture f;
  EXPECT_TRUE(
      CheckInvariants(f.spec, f.report, nullptr, InvariantOptions{})
          .empty());
}

TEST(InvariantCheckerTest, CatchesPerRoundBalanceBreak) {
  Fixture f;
  f.report.rounds[1].cooperative.served += 1;  // served+refused > requests
  const auto violations =
      CheckInvariants(f.spec, f.report, nullptr, InvariantOptions{});
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, Invariant::kRequestAccounting);
  EXPECT_NE(violations[0].detail.find("round 2"), std::string::npos);
}

TEST(InvariantCheckerTest, CatchesLostExceedingRefused) {
  Fixture f;
  f.report.rounds[0].free_rider.lost = 5;  // refused is only 1
  const auto violations =
      CheckInvariants(f.spec, f.report, nullptr, InvariantOptions{});
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, Invariant::kRequestAccounting);
  EXPECT_NE(violations[0].detail.find("lost"), std::string::npos);
}

TEST(InvariantCheckerTest, CatchesSliceSumsDriftingFromTotals) {
  Fixture f;
  f.report.cooperative.requests += 2;  // totals no longer match slices
  f.report.cooperative.refused += 2;
  const auto violations =
      CheckInvariants(f.spec, f.report, nullptr, InvariantOptions{});
  // Both the round sum and the phase sum disagree with the totals.
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].invariant, Invariant::kRequestAccounting);
  EXPECT_NE(violations[0].detail.find("sum over rounds"),
            std::string::npos);
  EXPECT_NE(violations[1].detail.find("sum over phases"),
            std::string::npos);
}

TEST(InvariantCheckerTest, CatchesNonFiniteAndSentinelScores) {
  Fixture f;
  f.spec.gossip_every = 1;  // 2 epochs expected
  f.report.gossip_rounds = 2;
  f.report.phases[0].epochs = 2;
  ReputationSnapshot snapshot;
  snapshot.epoch = 2;
  snapshot.scores.assign(4, std::vector<double>(4, 0.5));
  EXPECT_TRUE(
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{})
          .empty());

  snapshot.scores[1][2] = std::nan("");
  auto violations =
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{});
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, Invariant::kFiniteScores);

  snapshot.scores[1][2] = -1.0;  // negative sentinel
  violations =
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{});
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, Invariant::kFiniteScores);

  snapshot.scores[1][2] = 0.5;
  f.report.phases[0].rms = {0.1, std::nan("")};
  violations =
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{});
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, Invariant::kFiniteScores);
}

TEST(InvariantCheckerTest, CatchesEpochPacingBreaks) {
  Fixture f;
  f.spec.num_rounds = 4;
  f.spec.gossip_every = 2;  // 2 epochs expected
  f.report.gossip_rounds = 2;
  f.report.phases[0].epochs = 2;
  ReputationSnapshot snapshot;
  snapshot.epoch = 2;
  snapshot.scores.assign(4, std::vector<double>(4, 0.5));
  EXPECT_TRUE(
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{})
          .empty());

  // Fewer epochs than the schedule demands.
  f.report.gossip_rounds = 1;
  auto violations =
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{});
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, Invariant::kMonotoneEpochs);
  f.report.gossip_rounds = 2;

  // Snapshot epoch out of step.
  snapshot.epoch = 3;
  violations =
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{});
  EXPECT_EQ(Kinds(violations),
            std::vector<Invariant>{Invariant::kMonotoneEpochs});
  snapshot.epoch = 2;

  // A snapshot served although the schedule has no boundary.
  f.spec.gossip_every = 0;
  f.report.gossip_rounds = 0;
  f.report.phases[0].epochs = 0;
  violations =
      CheckInvariants(f.spec, f.report, &snapshot, InvariantOptions{});
  EXPECT_EQ(Kinds(violations),
            std::vector<Invariant>{Invariant::kMonotoneEpochs});

  // No snapshot although epochs were published.
  f.spec.gossip_every = 2;
  f.report.gossip_rounds = 2;
  f.report.phases[0].epochs = 2;
  violations = CheckInvariants(f.spec, f.report, nullptr,
                               InvariantOptions{});
  EXPECT_EQ(Kinds(violations),
            std::vector<Invariant>{Invariant::kMonotoneEpochs});
}

TEST(InvariantCheckerTest, CooperatorFloorFiresOnlyWithEnoughMass) {
  Fixture f;
  InvariantOptions options;
  options.cooperator_floor = 0.5;
  options.floor_min_requests = 100;

  // 5/8 served is above the floor but below the mass threshold anyway.
  EXPECT_TRUE(CheckInvariants(f.spec, f.report, nullptr, options).empty());

  // Scale the fixture to heavy traffic with a collapsed service rate,
  // keeping every accounting identity intact.
  auto scale = [](ClassMetrics& m) {
    m.requests *= 100;
    m.served *= 10;
    m.refused = m.requests - m.served;
    m.lost = 0;
  };
  scale(f.report.cooperative);
  scale(f.report.phases[0].cooperative);
  scale(f.report.rounds[0].cooperative);
  // Rebalance round 2 so the rounds still sum to the totals.
  f.report.rounds[1].cooperative.requests =
      f.report.cooperative.requests - f.report.rounds[0].cooperative.requests;
  f.report.rounds[1].cooperative.served =
      f.report.cooperative.served - f.report.rounds[0].cooperative.served;
  f.report.rounds[1].cooperative.refused =
      f.report.rounds[1].cooperative.requests -
      f.report.rounds[1].cooperative.served;
  f.report.rounds[1].cooperative.lost = 0;

  const auto violations =
      CheckInvariants(f.spec, f.report, nullptr, options);
  EXPECT_EQ(Kinds(violations),
            std::vector<Invariant>{Invariant::kCooperatorFloor});

  // The zero-stranger-trust economy deadlocks by design; the floor
  // abstains there.
  f.spec.admission = AdmissionMode::kDirectTrust;
  f.spec.newcomer_mode = NewcomerMode::kZero;
  EXPECT_TRUE(CheckInvariants(f.spec, f.report, nullptr, options).empty());
}

TEST(InvariantCheckerTest, RmsRecoveryComparesTailAgainstAttackPeak) {
  Fixture f;
  f.spec.num_rounds = 8;
  f.spec.gossip_every = 2;
  f.spec.compute_rms = true;
  f.spec.phases = {{"attack", 1, 4, true}};
  f.report.gossip_rounds = 4;

  ScenarioPhaseReport attack = f.report.phases[0];
  attack.name = "attack";
  attack.start_round = 1;
  attack.end_round = 4;
  attack.epochs = 2;
  attack.rms = {0.3, 0.5};
  ScenarioPhaseReport tail;
  tail.name = "clean";
  tail.start_round = 5;
  tail.end_round = 8;
  tail.epochs = 2;
  tail.rms = {0.3, 0.2};
  // Move all traffic into the attack phase so accounting stays exact.
  tail.cooperative = Metrics(0, 0);
  f.report.phases = {attack, tail};

  ReputationSnapshot snapshot;
  snapshot.epoch = 4;
  snapshot.scores.assign(4, std::vector<double>(4, 0.5));

  InvariantOptions options;
  options.rms_recovery_factor = 0.9;
  options.rms_recovery_slack = 0.05;
  // 0.2 <= 0.5 * 0.9 + 0.05: recovered.
  EXPECT_TRUE(
      CheckInvariants(f.spec, f.report, &snapshot, options).empty());

  // Tail stuck at the attack level: violation.
  f.report.phases[1].rms = {0.5, 0.55};
  const auto violations =
      CheckInvariants(f.spec, f.report, &snapshot, options);
  EXPECT_EQ(Kinds(violations),
            std::vector<Invariant>{Invariant::kRmsRecovery});

  // Without compute_rms the oracle abstains entirely.
  f.spec.compute_rms = false;
  EXPECT_TRUE(
      CheckInvariants(f.spec, f.report, &snapshot, options).empty());
}

}  // namespace
}  // namespace dgt
