#include "scenario/scenario_runner.h"

#include <cmath>

#include "scenario/canned_specs.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;

std::vector<PeerProfile> Cooperators(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  PopulationMix mix;
  mix.min_quality = 0.6;
  return MakePopulation(n, mix, rng);
}

// A population whose colluders follow an explicit plan; everyone else is
// cooperative with good quality.
std::vector<PeerProfile> PlannedPopulation(uint32_t n,
                                           const CollusionPlan& plan,
                                           uint64_t seed) {
  std::vector<PeerProfile> profiles(n);
  Rng rng(seed);
  for (NodeId i = 0; i < n; ++i) {
    profiles[i].strategy = plan.IsColluder(i) ? PeerStrategy::kColluder
                                              : PeerStrategy::kCooperative;
    profiles[i].service_quality = rng.NextDouble(0.6, 1.0);
  }
  return profiles;
}

ScenarioSpec BaseSpec(uint32_t n, uint64_t seed) {
  ScenarioSpec spec;
  spec.profiles = Cooperators(n, seed);
  spec.num_rounds = 12;
  spec.gossip_every = 4;
  spec.reputation.aggregation.gossip.xi = 1e-4;
  spec.seed = seed;
  return spec;
}

TEST(ScenarioRunnerTest, CreateValidatesInput) {
  Graph g = MakePaGraph(16);
  ScenarioSpec spec = BaseSpec(16, 1);
  EXPECT_FALSE(ScenarioRunner::Create(nullptr, spec).ok());

  ScenarioSpec bad = spec;
  bad.profiles.pop_back();
  EXPECT_FALSE(ScenarioRunner::Create(&g, bad).ok());

  bad = spec;
  bad.serve_threshold = 0.0;
  EXPECT_FALSE(ScenarioRunner::Create(&g, bad).ok());

  bad = spec;
  bad.phases = {{"a", 1, 6, false, 0.0, 0.0, false},
                {"b", 4, 12, false, 0.0, 0.0, false}};  // overlap
  EXPECT_FALSE(ScenarioRunner::Create(&g, bad).ok());

  bad = spec;
  bad.phases = {{"late", 1, 40, false, 0.0, 0.0, false}};  // out of range
  EXPECT_FALSE(ScenarioRunner::Create(&g, bad).ok());

  bad = spec;
  bad.phases = {{"loss", 1, 0, false, 1.5, 0.0, false}};
  EXPECT_FALSE(ScenarioRunner::Create(&g, bad).ok());

  bad = spec;
  bad.lifecycle_enabled = false;
  bad.phases = {{"ww", 1, 0, false, 0.0, 0.0, true}};
  EXPECT_FALSE(ScenarioRunner::Create(&g, bad).ok());
}

TEST(ScenarioRunnerTest, RunOnceOnly) {
  Graph g = MakePaGraph(16);
  auto runner = ScenarioRunner::Create(&g, BaseSpec(16, 2));
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run().ok());
  EXPECT_EQ((*runner)->Run().code(), StatusCode::kFailedPrecondition);
}

TEST(ScenarioRunnerTest, ScheduleNormalisationFillsGaps) {
  Graph g = MakePaGraph(16);
  ScenarioSpec spec = BaseSpec(16, 3);
  ScenarioPhase mid;
  mid.name = "mid";
  mid.start_round = 5;
  mid.end_round = 8;
  spec.phases = {mid};
  auto runner = ScenarioRunner::Create(&g, spec);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run().ok());
  const auto& phases = (*runner)->report().phases;
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].start_round, 1u);
  EXPECT_EQ(phases[0].end_round, 4u);
  EXPECT_EQ(phases[1].name, "mid");
  EXPECT_EQ(phases[2].start_round, 9u);
  EXPECT_EQ(phases[2].end_round, 12u);
  // Every request lands in exactly one phase.
  uint64_t phase_requests = 0;
  for (const auto& p : phases) {
    phase_requests += p.cooperative.requests + p.free_rider.requests +
                      p.colluder.requests + p.newcomer.requests;
  }
  const auto& rep = (*runner)->report();
  EXPECT_EQ(phase_requests, rep.cooperative.requests +
                                rep.free_rider.requests +
                                rep.colluder.requests +
                                rep.newcomer.requests);
}

TEST(ScenarioRunnerTest, PacketLossWindowCountsLostTransfers) {
  Graph g = MakePaGraph(32, 2, 400);
  ScenarioSpec spec = BaseSpec(32, 401);
  spec.num_rounds = 15;
  ScenarioPhase lossy;
  lossy.name = "lossy";
  lossy.start_round = 6;
  lossy.end_round = 10;
  lossy.packet_loss_prob = 0.5;
  spec.phases = {lossy};
  auto runner = ScenarioRunner::Create(&g, spec);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run().ok());
  const auto& phases = (*runner)->report().phases;
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].cooperative.lost, 0u);
  EXPECT_GT(phases[1].cooperative.lost, 0u);
  EXPECT_EQ(phases[2].cooperative.lost, 0u);
  // Losses count as refusals (requests = served + refused holds) and
  // never exceed them.
  const ClassMetrics& lossy_coop = phases[1].cooperative;
  EXPECT_EQ(lossy_coop.requests, lossy_coop.served + lossy_coop.refused);
  EXPECT_LE(lossy_coop.lost, lossy_coop.refused);
}

TEST(ScenarioRunnerTest, ChurnBurstResetsIdentities) {
  Graph g = MakePaGraph(40, 2, 410);
  ScenarioSpec spec = BaseSpec(40, 411);
  spec.num_rounds = 16;
  spec.lifecycle_enabled = true;  // newcomer tracking for churned peers
  ScenarioPhase burst;
  burst.name = "burst";
  burst.start_round = 9;
  burst.end_round = 16;
  burst.churn_fraction = 0.25;
  spec.phases = {burst};
  auto runner = ScenarioRunner::Create(&g, spec);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run().ok());
  const auto& rep = (*runner)->report();
  EXPECT_EQ(rep.churn_resets, 10u);  // 0.25 * 40, all at phase entry
  EXPECT_EQ(rep.identity_resets, 0u);
  ASSERT_EQ(rep.phases.size(), 2u);
  EXPECT_EQ(rep.phases[1].churn_resets, 10u);
  // Churned peers re-enter as tracked newcomers.
  EXPECT_GT(rep.newcomer.requests, 0u);
  EXPECT_EQ(rep.phases[0].newcomer.requests, 0u);
}

TEST(ScenarioRunnerTest, PhasedCollusionRaisesThenRecoversRmsError) {
  // The acceptance scenario: collusion onset -> detection -> recovery.
  // While the attack phase is on, the served scores diverge from the
  // collusion-free reference (RMS error jumps); once the colluders stop
  // poisoning, the next epochs fold honest reports again and the error
  // falls back.
  const uint32_t n = 48;
  Graph g = MakePaGraph(n, 2, 420);
  CollusionConfig cfg;
  cfg.colluding_fraction = 0.25;
  cfg.group_size = 4;
  cfg.seed = 421;
  auto plan = MakeCollusionPlan(n, cfg);
  ASSERT_TRUE(plan.ok());

  ScenarioSpec spec;
  spec.profiles = PlannedPopulation(n, *plan, 422);
  spec.collusion = *plan;
  spec.num_rounds = 24;
  spec.gossip_every = 4;
  spec.reputation.aggregation.gossip.xi = 1e-4;
  spec.compute_rms = true;
  spec.seed = 423;
  ScenarioPhase pre, attack, recovery;
  pre.name = "pre-attack";
  pre.start_round = 1;
  pre.end_round = 8;
  attack.name = "collusion";
  attack.start_round = 9;
  attack.end_round = 16;
  attack.collusion_active = true;
  recovery.name = "recovery";
  recovery.start_round = 17;
  recovery.end_round = 24;
  spec.phases = {pre, attack, recovery};

  auto runner = ScenarioRunner::Create(&g, spec);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run().ok());
  const auto& phases = (*runner)->report().phases;
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].epochs, 2u);
  EXPECT_EQ(phases[1].epochs, 2u);
  EXPECT_EQ(phases[2].epochs, 2u);
  // No poisoning before the attack: served == reference, RMS ~ 0.
  EXPECT_LT(phases[0].MeanRms(), 1e-9);
  // Onset: the poisoned epochs diverge hard from the reference.
  EXPECT_GT(phases[1].MeanRms(), phases[0].MeanRms() + 0.05);
  // Recovery: honest reporting resumes and the error falls.
  EXPECT_LT(phases[2].LastRms(), phases[1].LastRms());
  EXPECT_LT(phases[2].MeanRms(), phases[1].MeanRms());
}

TEST(ScenarioRunnerTest, AdaptiveColludersOscillateToEvadeDetection) {
  // Adaptive adversary: colluders read their own expected admission rate
  // off the served snapshot at every gossip boundary, lie low once the
  // economy starts starving them, and re-attack after their reputation
  // recovers. The counters must show at least one full suspend, resumes
  // can never outnumber suspends (the phase starts attack-on), and the
  // phase slices must mirror the run totals.
  const uint32_t n = 32;
  Graph g = MakePaGraph(n, 2, 450);
  CollusionConfig cfg;
  cfg.colluding_fraction = 0.25;
  cfg.group_size = 4;
  cfg.seed = 451;
  auto plan = MakeCollusionPlan(n, cfg);
  ASSERT_TRUE(plan.ok());

  ScenarioSpec spec;
  spec.profiles = PlannedPopulation(n, *plan, 452);
  spec.collusion = *plan;
  spec.num_rounds = 40;
  spec.gossip_every = 2;  // many boundaries -> many feedback readings
  spec.reputation.aggregation.gossip.xi = 1e-4;
  spec.seed = 453;
  ScenarioPhase phase;
  phase.name = "adaptive";
  phase.collusion_active = true;
  phase.adaptive_collusion = true;
  phase.adaptive_suspend_below = 0.5;
  phase.adaptive_resume_above = 0.6;
  spec.phases = {phase};

  auto runner = ScenarioRunner::Create(&g, spec);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  ASSERT_TRUE((*runner)->Run().ok());
  const ScenarioReport& rep = (*runner)->report();
  // Poisoned epochs collapse the colluders' admission below the suspend
  // threshold at least once.
  EXPECT_GE(rep.adaptive_suspends, 1u);
  EXPECT_LE(rep.adaptive_resumes, rep.adaptive_suspends);
  ASSERT_EQ(rep.phases.size(), 1u);
  EXPECT_EQ(rep.phases[0].adaptive_suspends, rep.adaptive_suspends);
  EXPECT_EQ(rep.phases[0].adaptive_resumes, rep.adaptive_resumes);

  // Control: the same attack without the adaptive hook never toggles.
  ScenarioSpec control = spec;
  control.phases[0].adaptive_collusion = false;
  auto control_runner = ScenarioRunner::Create(&g, control);
  ASSERT_TRUE(control_runner.ok());
  ASSERT_TRUE((*control_runner)->Run().ok());
  EXPECT_EQ((*control_runner)->report().adaptive_suspends, 0u);
  EXPECT_EQ((*control_runner)->report().adaptive_resumes, 0u);
}

TEST(ScenarioRunnerTest, DeterministicPerSeed) {
  Graph g = MakePaGraph(32, 2, 430);
  ScenarioSpec spec = BaseSpec(32, 431);
  spec.compute_rms = true;
  auto a = ScenarioRunner::Create(&g, spec);
  auto b = ScenarioRunner::Create(&g, spec);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE((*a)->Run().ok());
  ASSERT_TRUE((*b)->Run().ok());
  EXPECT_EQ((*a)->report().cooperative.served,
            (*b)->report().cooperative.served);
  EXPECT_EQ((*a)->report().trust_updates_submitted,
            (*b)->report().trust_updates_submitted);
  ASSERT_EQ((*a)->report().phases.size(), (*b)->report().phases.size());
  for (size_t p = 0; p < (*a)->report().phases.size(); ++p) {
    EXPECT_EQ((*a)->report().phases[p].rms, (*b)->report().phases[p].rms);
  }
}

TEST(ScenarioRunnerTest, ServiceSnapshotMatchesEpochCount) {
  Graph g = MakePaGraph(24, 2, 440);
  ScenarioSpec spec = BaseSpec(24, 441);
  spec.num_rounds = 10;
  spec.gossip_every = 3;  // 3 epochs, one trailing transaction round
  auto runner = ScenarioRunner::Create(&g, spec);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run().ok());
  EXPECT_EQ((*runner)->report().gossip_rounds, 3u);
  ASSERT_NE((*runner)->snapshot(), nullptr);
  EXPECT_EQ((*runner)->snapshot()->epoch, 3u);
  EXPECT_GT((*runner)->last_round_stats().steps, 0u);
  EXPECT_GT((*runner)->report().trust_updates_submitted, 0u);
}

}  // namespace
}  // namespace dgt
