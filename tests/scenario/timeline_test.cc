#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/bench_output.h"
#include "scenario/metrics.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

ScenarioReport TwoPhaseReport() {
  ScenarioReport report;
  ScenarioPhaseReport a;
  a.name = "pre";
  a.start_round = 1;
  a.end_round = 5;
  a.cooperative.requests = 100;
  a.cooperative.served = 80;
  a.cooperative.refused = 20;
  a.epochs = 1;
  a.rms = {0.0};
  ScenarioPhaseReport b;
  b.name = "attack";
  b.start_round = 6;
  b.end_round = 10;
  b.colluder.requests = 40;
  b.colluder.refused = 40;
  b.colluder.lost = 4;
  b.identity_resets = 3;
  b.epochs = 2;
  b.rms = {0.2, 0.4};
  report.phases = {a, b};
  return report;
}

TEST(ScenarioTimelineTest, EmitsOnePointPerPhase) {
  BenchJsonWriter writer("scenario_timeline_test", "");
  // Output disabled (empty dir) still exercises AddPoint bookkeeping.
  AppendScenarioTimeline(TwoPhaseReport(), {{"n", 40.0}}, &writer);
  EXPECT_EQ(writer.path(), "");
}

TEST(ScenarioTimelineTest, WritesGateableFields) {
  std::string dir = EnsureDir("dgt_test_tmp");
  ASSERT_FALSE(dir.empty());
  BenchJsonWriter writer("scenario_timeline_test", dir);
  AppendScenarioTimeline(TwoPhaseReport(), {{"n", 40.0}}, &writer);
  ASSERT_TRUE(writer.Write());

  std::ifstream in(writer.path());
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  // One point per phase, keyed by the replicated config field and the
  // phase index; counts carry the suffixes scripts/check_bench_baseline.py
  // gates, RMS the advisory one.
  EXPECT_NE(json.find("\"phase\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"n\": 40"), std::string::npos);
  EXPECT_NE(json.find("\"coop_requests\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"col_refused\": 40"), std::string::npos);
  EXPECT_NE(json.find("\"lost_count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"identity_resets\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gossip_epochs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mean_rms\""), std::string::npos);
  std::remove(writer.path().c_str());
}

}  // namespace
}  // namespace dgt
