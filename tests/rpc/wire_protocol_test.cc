// Wire-protocol conformance: every message type round-trips through
// Encode/DecodeFrame bit-exactly, every malformed / truncated /
// version-mismatched frame is rejected with the named error code, and
// docs/SERVING.md (the prose spec) names every MessageType and WireError
// in rpc/wire.h — enumerated from the same kAllMessageTypes /
// kAllWireErrors lists the implementation exports, so code and spec
// cannot drift apart silently.

#include "rpc/wire.h"

#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace dgt {
namespace rpc {
namespace {

uint64_t Bits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

// One representative, fully-populated frame per message type. The
// coverage test below asserts this list spans kAllMessageTypes exactly,
// so adding a wire message without extending it fails loudly.
std::vector<std::pair<MessageType, std::vector<uint8_t>>> SampleFrames() {
  const uint64_t id = 0x1122334455667788ull;
  return {
      {MessageType::kPointQueryRequest,
       Encode(id, PointQueryRequest{3, 7})},
      {MessageType::kBatchQueryRequest,
       Encode(id, BatchQueryRequest{2, {0, 5, 5, 9}})},
      {MessageType::kTopKQueryRequest, Encode(id, TopKQueryRequest{4, 8})},
      {MessageType::kTrustUpdateRequest,
       Encode(id, TrustUpdateRequest{1, 2, 0.625, false})},
      {MessageType::kPingRequest, Encode(id, PingRequest{})},
      {MessageType::kStatsRequest, Encode(id, StatsRequest{})},
      {MessageType::kPointQueryReply,
       Encode(id, PointQueryReply{6, -0.0})},
      {MessageType::kBatchQueryReply,
       Encode(id, BatchQueryReply{6, {1.0 / 3.0, 5e-324, 0.0}})},
      {MessageType::kTopKQueryReply,
       Encode(id, TopKQueryReply{6, {8, 1}, {0.9, 0.8999999999999999}})},
      {MessageType::kTrustUpdateReply, Encode(id, TrustUpdateReply{})},
      {MessageType::kPingReply, Encode(id, PingReply{42})},
      {MessageType::kStatsResponse,
       Encode(id, StatsResponse{{{"rpc_requests_ping", 3}},
                                {{"rpc_queue_depth", -2}},
                                {{"rpc_service_ping_us",
                                  HistogramStat{4, 100, {{0, 1}, {17, 3}}}}}})},
      {MessageType::kErrorReply,
       EncodeError(id, WireError::kBackpressure, "queue full")},
  };
}

TEST(WireProtocolTest, EveryMessageTypeRoundTrips) {
  std::set<MessageType> covered;
  for (const auto& [type, frame] : SampleFrames()) {
    SCOPED_TRACE(MessageTypeName(type));
    DecodedMessage msg;
    std::string reason;
    ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
              WireError::kOk)
        << reason;
    EXPECT_EQ(msg.header.version, kWireVersion);
    EXPECT_EQ(msg.header.type, type);
    EXPECT_EQ(msg.header.request_id, 0x1122334455667788ull);
    covered.insert(type);
  }
  // The sample list and the exported exhaustive list agree.
  std::set<MessageType> all(std::begin(kAllMessageTypes),
                            std::end(kAllMessageTypes));
  EXPECT_EQ(covered, all);
}

TEST(WireProtocolTest, FieldsSurviveBitExactly) {
  DecodedMessage msg;
  std::string reason;

  auto frame = Encode(9, BatchQueryRequest{2, {0, 5, 5, 9}});
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kOk);
  const auto& bq = std::get<BatchQueryRequest>(msg.body);
  EXPECT_EQ(bq.observer, 2u);
  EXPECT_EQ(bq.targets, (std::vector<NodeId>{0, 5, 5, 9}));

  // Doubles travel as IEEE-754 bits: -0.0 and denormals must come back
  // with the exact bit pattern, not merely compare ==.
  frame = Encode(9, BatchQueryReply{6, {-0.0, 5e-324, 1.0 / 3.0}});
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kOk);
  const auto& br = std::get<BatchQueryReply>(msg.body);
  ASSERT_EQ(br.scores.size(), 3u);
  EXPECT_EQ(br.epoch, 6u);
  EXPECT_EQ(Bits(br.scores[0]), Bits(-0.0));
  EXPECT_EQ(Bits(br.scores[1]), Bits(5e-324));
  EXPECT_EQ(Bits(br.scores[2]), Bits(1.0 / 3.0));

  frame = Encode(9, TrustUpdateRequest{1, 2, 0.625, true});
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kOk);
  const auto& tu = std::get<TrustUpdateRequest>(msg.body);
  EXPECT_EQ(tu.observer, 1u);
  EXPECT_EQ(tu.target, 2u);
  EXPECT_EQ(tu.value, 0.625);
  EXPECT_TRUE(tu.erase);

  frame = EncodeError(9, WireError::kNotReady, "round 1 still running");
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kOk);
  EXPECT_EQ(msg.header.error, WireError::kNotReady);
  EXPECT_EQ(std::get<ErrorReply>(msg.body).message,
            "round 1 still running");
}

TEST(WireProtocolTest, StatsResponseFieldsSurvive) {
  StatsResponse stats;
  stats.counters = {{"rpc_requests_point_query", 876},
                    {"serve_epochs_published", 3}};
  // Gauges are signed and travel as two's-complement u64.
  stats.gauges = {{"rpc_queue_depth", 0}, {"serve_snapshot_age_us", -7}};
  stats.histograms = {
      {"rpc_service_ping_us",
       HistogramStat{5, 1234, {{0, 2}, {17, 2}, {obs::kHistogramBuckets - 1,
                                                 1}}}}};
  auto frame = Encode(31, stats);
  DecodedMessage msg;
  std::string reason;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kOk)
      << reason;
  const auto& got = std::get<StatsResponse>(msg.body);
  EXPECT_EQ(got.counters, stats.counters);
  EXPECT_EQ(got.gauges, stats.gauges);
  ASSERT_EQ(got.histograms.size(), 1u);
  EXPECT_EQ(got.histograms[0].first, "rpc_service_ping_us");
  EXPECT_EQ(got.histograms[0].second.count, 5u);
  EXPECT_EQ(got.histograms[0].second.sum, 1234u);
  EXPECT_EQ(got.histograms[0].second.buckets,
            stats.histograms[0].second.buckets);
}

TEST(WireProtocolTest, StatsResponseBucketIndicesAreValidated) {
  // Sparse histogram buckets must be strictly ascending and inside the
  // shared bucket space, or a decoded response could not be densified.
  for (const auto& buckets :
       {std::vector<std::pair<uint32_t, uint64_t>>{{5, 1}, {5, 2}},
        std::vector<std::pair<uint32_t, uint64_t>>{{9, 1}, {4, 2}},
        std::vector<std::pair<uint32_t, uint64_t>>{
            {obs::kHistogramBuckets, 1}}}) {
    StatsResponse stats;
    stats.histograms = {{"h", HistogramStat{1, 1, buckets}}};
    auto frame = Encode(8, stats);
    DecodedMessage msg;
    std::string reason;
    EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
              WireError::kMalformedFrame);
  }
}

TEST(WireProtocolTest, StatsConvertersRoundTripThroughTheSparseForm) {
  obs::MetricsRegistry registry;
  registry.GetCounter("hits")->Increment(42);
  registry.GetGauge("depth")->Set(-3);
  obs::LatencyHistogram* lat = registry.GetHistogram("lat_us");
  lat->Record(1);
  lat->Record(1);
  lat->Record(1000000);
  registry.GetHistogram("empty_us");  // registered, nothing recorded

  const obs::MetricsSnapshot original = registry.Snapshot();
  const StatsResponse wire_form = StatsFromMetrics(original);
  // Sparsification keeps only the three nonzero buckets.
  ASSERT_EQ(wire_form.histograms.size(), 2u);
  EXPECT_EQ(wire_form.histograms[1].second.buckets.size(), 2u);

  // Densify after a real encode/decode pass, not just in-process.
  auto frame = Encode(4, wire_form);
  DecodedMessage msg;
  std::string reason;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kOk)
      << reason;
  const obs::MetricsSnapshot back =
      MetricsFromStats(std::get<StatsResponse>(msg.body));

  EXPECT_EQ(back.counters, original.counters);
  EXPECT_EQ(back.gauges, original.gauges);
  const obs::HistogramSnapshot& lat_back = back.histograms.at("lat_us");
  const obs::HistogramSnapshot& lat_orig = original.histograms.at("lat_us");
  EXPECT_EQ(lat_back.count, lat_orig.count);
  EXPECT_EQ(lat_back.sum, lat_orig.sum);
  EXPECT_EQ(lat_back.buckets, lat_orig.buckets);
  // An all-zero histogram travels with no buckets and densifies to none;
  // its percentiles still read 0.
  EXPECT_EQ(back.histograms.at("empty_us").count, 0u);
  EXPECT_DOUBLE_EQ(back.histograms.at("empty_us").ValueAtPercentile(50.0),
                   0.0);
}

TEST(WireProtocolTest, EveryTruncationIsMalformed) {
  // Exact-size discipline: every strict prefix of every valid frame (and
  // every one-byte extension) decodes to kMalformedFrame — there is no
  // length that parses to the wrong message instead of an error.
  for (const auto& [type, frame] : SampleFrames()) {
    SCOPED_TRACE(MessageTypeName(type));
    for (size_t len = 0; len < frame.size(); ++len) {
      DecodedMessage msg;
      std::string reason;
      EXPECT_EQ(DecodeFrame(frame.data(), len, &msg, &reason),
                WireError::kMalformedFrame)
          << "prefix of " << len << " bytes";
    }
    std::vector<uint8_t> extended = frame;
    extended.push_back(0xAB);
    DecodedMessage msg;
    std::string reason;
    EXPECT_EQ(DecodeFrame(extended.data(), extended.size(), &msg, &reason),
              WireError::kMalformedFrame)
        << "one trailing garbage byte";
  }
}

TEST(WireProtocolTest, VersionMismatchIsNamedAndEchoesRequestId) {
  auto frame = Encode(77, PingRequest{});
  frame[0] = 2;  // version u16 LE at offset 0
  frame[1] = 0;
  DecodedMessage msg;
  std::string reason;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kVersionMismatch);
  // Best-effort header parse lets the server address its error reply.
  EXPECT_EQ(msg.header.request_id, 77u);
  EXPECT_NE(reason.find("2"), std::string::npos);
  EXPECT_NE(reason.find("1"), std::string::npos);
}

TEST(WireProtocolTest, UnknownTypeByteIsRejectedButAddressable) {
  for (uint8_t raw : {uint8_t{0}, uint8_t{7}, uint8_t{32}, uint8_t{200}}) {
    auto frame = Encode(91, PingRequest{});
    frame[2] = raw;  // type byte at offset 2
    DecodedMessage msg;
    std::string reason;
    EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
              WireError::kUnknownType)
        << "raw type " << static_cast<int>(raw);
    EXPECT_EQ(msg.header.request_id, 91u);
  }
}

TEST(WireProtocolTest, OversizedAndInvalidPayloadsAreMalformed) {
  // Over the frame cap: rejected before any body parsing.
  std::vector<uint8_t> huge(kMaxFramePayloadBytes + 1, 0);
  DecodedMessage msg;
  std::string reason;
  EXPECT_EQ(DecodeFrame(huge.data(), huge.size(), &msg, &reason),
            WireError::kMalformedFrame);

  // An erase flag that is neither 0 nor 1 is not a bool on this wire.
  auto frame = Encode(5, TrustUpdateRequest{1, 2, 0.5, false});
  frame.back() = 2;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &msg, &reason),
            WireError::kMalformedFrame);
}

TEST(WireProtocolTest, NamesAreStableAndTotal) {
  for (MessageType type : kAllMessageTypes) {
    EXPECT_NE(MessageTypeName(type), "?");
  }
  for (WireError error : kAllWireErrors) {
    EXPECT_NE(WireErrorName(error), "?");
  }
  EXPECT_EQ(MessageTypeName(static_cast<MessageType>(200)), "?");
  EXPECT_EQ(WireErrorName(static_cast<WireError>(200)), "?");
  EXPECT_EQ(MessageTypeName(MessageType::kPointQueryRequest),
            "PointQueryRequest");
  EXPECT_EQ(WireErrorName(WireError::kBackpressure), "Backpressure");
}

TEST(WireProtocolTest, ServingDocNamesEveryTypeAndError) {
  // docs/SERVING.md is the prose spec; ISSUE 8's acceptance requires it
  // to document every wire message type and error code. Enumerate the
  // same exhaustive lists the code exports against the document text.
  const std::string path = std::string(DGT_REPO_ROOT) + "/docs/SERVING.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  for (MessageType type : kAllMessageTypes) {
    EXPECT_NE(doc.find(std::string(MessageTypeName(type))),
              std::string::npos)
        << "docs/SERVING.md does not document message type "
        << MessageTypeName(type);
  }
  for (WireError error : kAllWireErrors) {
    EXPECT_NE(doc.find(std::string(WireErrorName(error))),
              std::string::npos)
        << "docs/SERVING.md does not document wire error "
        << WireErrorName(error);
  }
}

}  // namespace
}  // namespace rpc
}  // namespace dgt
