// RpcServer behaviour at the transport/admission layer: readiness
// before the first epoch, deterministic backpressure when the bounded
// request queue fills, the error-close discipline (malformed frame /
// version mismatch answer then close; unknown type answers and keeps
// the connection), and served query results matching the in-process
// service. The full workload bit-identity run lives in
// end_to_end_test.cc.

#include "rpc/server.h"

#include <cstring>
#include <string>
#include <vector>

#include "rpc/client.h"
#include "rpc/frame_io.h"
#include "rpc/wire.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace rpc {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

ReputationServiceOptions ServiceOptions(uint32_t rounds) {
  ReputationServiceOptions o;
  o.system.aggregation.gossip.xi = 1e-3;
  o.system.base_seed = 17;
  o.num_rounds = rounds;
  return o;
}

// A served service: `rounds` completed, snapshot frozen.
struct Fixture {
  Fixture(uint32_t n, uint32_t rounds, RpcServerOptions server_opts = {})
      : graph(MakePaGraph(n, 2, 91)), trust(n) {
    FillTrust(graph, &trust, 5);
    service = std::make_unique<ReputationService>(&graph, trust,
                                                  ServiceOptions(rounds));
    if (rounds > 0) {
      EXPECT_TRUE(service->Start().ok());
      service->AwaitCompletion();
      EXPECT_TRUE(service->driver_status().ok());
    }
    server = std::make_unique<RpcServer>(service.get(), server_opts);
    EXPECT_TRUE(server->Start().ok());
  }
  ~Fixture() { server->Stop(); }

  Graph graph;
  TrustMatrix trust;
  std::unique_ptr<ReputationService> service;
  std::unique_ptr<RpcServer> server;
};

TEST(RpcServerTest, ServesQueriesIdenticalToInProcessService) {
  Fixture fx(32, 2);
  Result<RpcClient> client = RpcClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  ASSERT_EQ(client.value().Ping().value_or(0), 2u);

  for (NodeId i = 0; i < 32; i += 5) {
    for (NodeId j = 0; j < 32; j += 3) {
      Result<PointQueryReply> served = client.value().QueryPoint(i, j);
      Result<PointQueryResult> local = fx.service->QueryPoint(i, j);
      ASSERT_TRUE(served.ok() && local.ok());
      EXPECT_EQ(served.value().epoch, local.value().epoch);
      EXPECT_EQ(served.value().score, local.value().score);  // bit-exact
    }
  }

  const std::vector<NodeId> targets = {0, 7, 7, 31};
  Result<BatchQueryReply> served_b = client.value().QueryBatch(3, targets);
  Result<BatchQueryResult> local_b = fx.service->QueryBatch(3, targets);
  ASSERT_TRUE(served_b.ok() && local_b.ok());
  EXPECT_EQ(served_b.value().scores, local_b.value().scores);

  Result<TopKQueryReply> served_k = client.value().QueryTopK(3, 5);
  Result<TopKQueryResult> local_k = fx.service->QueryTopK(3, 5);
  ASSERT_TRUE(served_k.ok() && local_k.ok());
  EXPECT_EQ(served_k.value().ids, local_k.value().ids);
  EXPECT_EQ(served_k.value().scores, local_k.value().scores);
}

TEST(RpcServerTest, NotReadyBeforeFirstEpochButPingWorks) {
  // rounds = 0 and never started: no snapshot exists.
  Fixture fx(16, 0);
  Result<RpcClient> client = RpcClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());

  EXPECT_EQ(client.value().Ping().value_or(99), 0u);
  Result<PointQueryReply> r = client.value().QueryPoint(1, 2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(client.value().last_wire_error(), WireError::kNotReady);
}

TEST(RpcServerTest, QueryAndUpdateErrorsCarryNamedCodes) {
  Fixture fx(16, 1);
  Result<RpcClient> client = RpcClient::Connect(fx.server->port());
  ASSERT_TRUE(client.ok());
  RpcClient& rpc = client.value();

  EXPECT_FALSE(rpc.QueryPoint(99, 0).ok());  // observer out of range
  EXPECT_EQ(rpc.last_wire_error(), WireError::kOutOfRange);

  EXPECT_FALSE(rpc.QueryBatch(0, {}).ok());  // empty target list
  EXPECT_EQ(rpc.last_wire_error(), WireError::kInvalidArgument);

  EXPECT_FALSE(rpc.QueryTopK(0, 0).ok());  // k == 0
  EXPECT_EQ(rpc.last_wire_error(), WireError::kInvalidArgument);

  EXPECT_FALSE(rpc.SubmitTrustUpdate(3, 3, 0.5).ok());  // self-opinion
  EXPECT_EQ(rpc.last_wire_error(), WireError::kInvalidArgument);

  EXPECT_FALSE(rpc.SubmitTrustUpdate(3, 4, 1.5).ok());  // value > 1
  EXPECT_EQ(rpc.last_wire_error(), WireError::kInvalidArgument);

  // Valid update on the same connection still works: none of the above
  // closed it.
  EXPECT_TRUE(rpc.SubmitTrustUpdate(3, 4, 0.5).ok());
}

TEST(RpcServerTest, FullRequestQueueAnswersBackpressureDeterministically) {
  RpcServerOptions opts;
  opts.request_queue_capacity = 2;
  opts.hold_workers = true;  // park the pool: nothing drains the queue
  opts.worker_threads = 1;
  Fixture fx(16, 1, opts);

  Result<UniqueFd> conn = ConnectLoopback(fx.server->port());
  ASSERT_TRUE(conn.ok());
  const int fd = conn.value().get();

  // Pipeline three requests into a capacity-2 queue. The reader thread
  // enqueues 1 and 2, rejects 3 — so the FIRST reply on the wire is
  // request 3's Backpressure error, written by the reader itself.
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(WriteFrame(fd, Encode(id, PingRequest{})).ok());
  }
  DecodedMessage msg;
  std::string reason;
  Result<std::vector<uint8_t>> frame = ReadFrame(fd);
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(DecodeFrame(frame.value().data(), frame.value().size(), &msg,
                        &reason),
            WireError::kOk);
  EXPECT_EQ(msg.header.request_id, 3u);
  EXPECT_EQ(msg.header.type, MessageType::kErrorReply);
  EXPECT_EQ(msg.header.error, WireError::kBackpressure);
  EXPECT_EQ(fx.server->requests_rejected(), 1u);

  // Unpark the workers: the two admitted requests are answered in FIFO
  // order on this connection.
  fx.server->ReleaseWorkers();
  for (uint64_t id = 1; id <= 2; ++id) {
    frame = ReadFrame(fd);
    ASSERT_TRUE(frame.ok());
    ASSERT_EQ(DecodeFrame(frame.value().data(), frame.value().size(), &msg,
                          &reason),
              WireError::kOk);
    EXPECT_EQ(msg.header.request_id, id);
    EXPECT_EQ(msg.header.type, MessageType::kPingReply);
  }
  EXPECT_EQ(fx.server->requests_enqueued(), 2u);
}

TEST(RpcServerTest, UnknownTypeAnswersAndKeepsConnection) {
  Fixture fx(16, 1);
  Result<UniqueFd> conn = ConnectLoopback(fx.server->port());
  ASSERT_TRUE(conn.ok());
  const int fd = conn.value().get();

  std::vector<uint8_t> frame = Encode(21, PingRequest{});
  frame[2] = 31;  // unused request-range type byte
  ASSERT_TRUE(WriteFrame(fd, frame).ok());

  DecodedMessage msg;
  std::string reason;
  Result<std::vector<uint8_t>> reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(DecodeFrame(reply.value().data(), reply.value().size(), &msg,
                        &reason),
            WireError::kOk);
  EXPECT_EQ(msg.header.request_id, 21u);
  EXPECT_EQ(msg.header.error, WireError::kUnknownType);

  // The framing is still trustworthy, so the connection survives.
  ASSERT_TRUE(WriteFrame(fd, Encode(22, PingRequest{})).ok());
  reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(DecodeFrame(reply.value().data(), reply.value().size(), &msg,
                        &reason),
            WireError::kOk);
  EXPECT_EQ(msg.header.request_id, 22u);
  EXPECT_EQ(msg.header.type, MessageType::kPingReply);
}

TEST(RpcServerTest, VersionMismatchAnswersThenClosesConnection) {
  Fixture fx(16, 1);
  Result<UniqueFd> conn = ConnectLoopback(fx.server->port());
  ASSERT_TRUE(conn.ok());
  const int fd = conn.value().get();

  std::vector<uint8_t> frame = Encode(33, PingRequest{});
  frame[0] = 9;  // bogus protocol version
  ASSERT_TRUE(WriteFrame(fd, frame).ok());

  DecodedMessage msg;
  std::string reason;
  Result<std::vector<uint8_t>> reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(DecodeFrame(reply.value().data(), reply.value().size(), &msg,
                        &reason),
            WireError::kOk);
  EXPECT_EQ(msg.header.request_id, 33u);
  EXPECT_EQ(msg.header.error, WireError::kVersionMismatch);

  // ... and then EOF: a peer speaking the wrong version cannot be framed.
  Result<std::vector<uint8_t>> after = ReadFrame(fd);
  EXPECT_FALSE(after.ok());
  EXPECT_EQ(fx.server->frames_rejected(), 1u);
}

TEST(RpcServerTest, MalformedFrameAnswersRequestIdZeroThenCloses) {
  Fixture fx(16, 1);
  Result<UniqueFd> conn = ConnectLoopback(fx.server->port());
  ASSERT_TRUE(conn.ok());
  const int fd = conn.value().get();

  // 5 bytes of garbage: too short to even recover a request id.
  ASSERT_TRUE(WriteFrame(fd, {0xDE, 0xAD, 0xBE, 0xEF, 0x01}).ok());

  DecodedMessage msg;
  std::string reason;
  Result<std::vector<uint8_t>> reply = ReadFrame(fd);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(DecodeFrame(reply.value().data(), reply.value().size(), &msg,
                        &reason),
            WireError::kOk);
  EXPECT_EQ(msg.header.request_id, 0u);
  EXPECT_EQ(msg.header.error, WireError::kMalformedFrame);

  Result<std::vector<uint8_t>> after = ReadFrame(fd);
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace rpc
}  // namespace dgt
