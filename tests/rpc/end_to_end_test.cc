// The networked bit-identity contract, live-folding edition: a paced
// ReputationService runs behind an RpcServer while the test submits
// trust updates OVER THE WIRE at every epoch boundary; a control service
// replays the identical schedule in-process. Every score served over
// RPC must be EXPECT_EQ (bit-identical) to the control's — doubles
// travel as IEEE-754 bits, the snapshot store is deterministic per
// schedule, and nothing on the wire path may perturb either. This is
// the stronger sibling of dgt_loadgen's frozen-snapshot smoke check:
// here updates fold while rounds are still running.

#include <memory>
#include <vector>

#include "rpc/client.h"
#include "rpc/server.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace rpc {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

constexpr uint32_t kNodes = 48;
constexpr uint32_t kRounds = 4;
constexpr uint32_t kUpdatesPerEpoch = 12;
constexpr uint64_t kUpdateSeedBase = 7000;

ReputationServiceOptions PacedOptions() {
  ReputationServiceOptions o;
  o.system.aggregation.gossip.xi = 1e-3;
  o.system.base_seed = 17;
  o.num_rounds = kRounds;
  o.paced = true;
  return o;
}

TEST(RpcEndToEndTest, ScoresServedOverWireMatchInProcessBitwise) {
  Graph g = MakePaGraph(kNodes, 2, 91);
  TrustMatrix trust(kNodes);
  FillTrust(g, &trust, 5);

  // The served side: paced service + RPC server, updates arrive via a
  // client connection.
  ReputationService served(&g, trust, PacedOptions());
  const uint32_t pacer_id = served.RegisterReader();
  RpcServer server(&served, RpcServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(served.Start().ok());

  Result<RpcClient> client = RpcClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  RpcClient& rpc = client.value();

  // The control side: same graph, trust and options, updates submitted
  // directly — the in-process ground truth.
  ReputationService control(&g, trust, PacedOptions());
  const uint32_t control_pacer = control.RegisterReader();
  ASSERT_TRUE(control.Start().ok());

  uint64_t last = 0;
  for (;;) {
    const uint64_t epoch = served.AwaitEpochAfter(last);
    const uint64_t control_epoch = control.AwaitEpochAfter(last);
    ASSERT_EQ(epoch, control_epoch);
    if (epoch == 0) break;
    if (epoch < kRounds) {
      for (const TrustUpdate& u : MakeDistinctTrustUpdates(
               kNodes, kUpdateSeedBase + epoch, kUpdatesPerEpoch)) {
        // Over the wire for the served service... the RPC call returns
        // only after the server has enqueued the update, so acking the
        // epoch below cannot race the submission.
        ASSERT_TRUE(rpc.SubmitTrustUpdate(u.observer, u.target, u.value).ok())
            << "epoch " << epoch;
        // ... directly for the control.
        ASSERT_TRUE(
            control.SubmitTrustUpdate(u.observer, u.target, u.value).ok());
      }
    }
    served.AckEpoch(pacer_id, epoch);
    control.AckEpoch(control_pacer, epoch);
    last = epoch;
  }
  served.AwaitCompletion();
  control.AwaitCompletion();
  ASSERT_TRUE(served.driver_status().ok());
  ASSERT_TRUE(control.driver_status().ok());
  ASSERT_EQ(served.epoch(), kRounds);
  ASSERT_EQ(rpc.Ping().value_or(0), kRounds);

  // Every point score, bitwise.
  for (NodeId i = 0; i < kNodes; ++i) {
    for (NodeId j = 0; j < kNodes; ++j) {
      Result<PointQueryReply> over_wire = rpc.QueryPoint(i, j);
      Result<PointQueryResult> local = control.QueryPoint(i, j);
      ASSERT_TRUE(over_wire.ok() && local.ok()) << i << "," << j;
      ASSERT_EQ(over_wire.value().epoch, local.value().epoch);
      ASSERT_EQ(over_wire.value().score, local.value().score)
          << "observer " << i << " target " << j;
    }
  }

  // Batch and top-k shapes agree too (same snapshot, same semantics).
  std::vector<NodeId> all(kNodes);
  for (uint32_t j = 0; j < kNodes; ++j) all[j] = static_cast<NodeId>(j);
  for (NodeId i = 0; i < kNodes; i += 7) {
    Result<BatchQueryReply> wire_b = rpc.QueryBatch(i, all);
    Result<BatchQueryResult> local_b = control.QueryBatch(i, all);
    ASSERT_TRUE(wire_b.ok() && local_b.ok());
    EXPECT_EQ(wire_b.value().scores, local_b.value().scores);

    Result<TopKQueryReply> wire_k = rpc.QueryTopK(i, 8);
    Result<TopKQueryResult> local_k = control.QueryTopK(i, 8);
    ASSERT_TRUE(wire_k.ok() && local_k.ok());
    EXPECT_EQ(wire_k.value().ids, local_k.value().ids);
    EXPECT_EQ(wire_k.value().scores, local_k.value().scores);
  }

  server.Stop();
}

TEST(RpcEndToEndTest, InvalidUpdatesOverWireAreRejectedWithNamedCodes) {
  Graph g = MakePaGraph(16, 2, 91);
  TrustMatrix trust(16);
  FillTrust(g, &trust, 5);

  ReputationServiceOptions opts;
  opts.system.aggregation.gossip.xi = 1e-3;
  opts.system.base_seed = 17;
  opts.num_rounds = 1;
  ReputationService service(&g, trust, opts);
  ASSERT_TRUE(service.Start().ok());
  service.AwaitCompletion();

  RpcServer server(&service, RpcServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Result<RpcClient> client = RpcClient::Connect(server.port());
  ASSERT_TRUE(client.ok());
  RpcClient& rpc = client.value();

  EXPECT_FALSE(rpc.SubmitTrustUpdate(0, 99, 0.5).ok());  // target range
  EXPECT_EQ(rpc.last_wire_error(), WireError::kOutOfRange);

  EXPECT_FALSE(rpc.SubmitTrustUpdate(2, 2, 0.5).ok());  // self-opinion
  EXPECT_EQ(rpc.last_wire_error(), WireError::kInvalidArgument);

  EXPECT_FALSE(rpc.SubmitTrustErase(0, 99).ok());  // erase validates too
  EXPECT_EQ(rpc.last_wire_error(), WireError::kOutOfRange);

  EXPECT_TRUE(rpc.SubmitTrustErase(0, 1).ok());
  server.Stop();
}

}  // namespace
}  // namespace rpc
}  // namespace dgt
