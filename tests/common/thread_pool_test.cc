#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (size_t n : {0ul, 1ul, 7ul, 64ul, 1000ul}) {
      std::vector<std::atomic<uint32_t>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(n, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1u) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, ShardDecompositionIsContiguousAndOrdered) {
  // Shard boundaries must be a pure function of n: contiguous, ascending
  // with shard id, and covering [0, n) — the determinism contract that
  // lets callers keep per-shard buffers and concatenate them in order.
  ThreadPool pool(4);
  const size_t n = 1003;
  const size_t shards = pool.NumShards(n);
  std::vector<std::pair<size_t, size_t>> ranges(shards, {0, 0});
  pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
    ranges[shard] = {begin, end};
  });
  size_t expect_begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    EXPECT_EQ(ranges[s].first, expect_begin);
    EXPECT_GE(ranges[s].second, ranges[s].first);
    expect_begin = ranges[s].second;
  }
  EXPECT_EQ(expect_begin, n);
}

TEST(ThreadPoolTest, PerShardBuffersConcatenateDeterministically) {
  // The pattern the gossip engines rely on: workers write per-shard
  // buffers, the caller concatenates in shard order; the result must not
  // depend on the thread count.
  auto run = [](uint32_t threads) {
    ThreadPool pool(threads);
    const size_t n = 512;
    std::vector<std::vector<size_t>> shard_out(pool.NumShards(n));
    pool.ParallelFor(n, [&](size_t shard, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        shard_out[shard].push_back(i * i % 97);
      }
    });
    std::vector<size_t> flat;
    for (const auto& out : shard_out) {
      flat.insert(flat.end(), out.begin(), out.end());
    }
    return flat;
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPoolTest, BackToBackJobsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.ParallelFor(100, [&](size_t, size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 100u);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  uint64_t sum = 0;
  std::mutex mu;
  pool.ParallelFor(10, [&](size_t, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45u);
}

}  // namespace
}  // namespace dgt
