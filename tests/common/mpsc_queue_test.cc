#include "common/mpsc_queue.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(BoundedMpscQueueTest, FifoOrderSingleProducer) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_EQ(q.size(), 5u);

  std::vector<int> out{-1};  // DrainInto must append, not overwrite
  EXPECT_EQ(q.DrainInto(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{-1, 0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.DrainInto(out), 0u);
}

TEST(BoundedMpscQueueTest, FullQueueRejectsWithBackpressureCount) {
  BoundedMpscQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));
  EXPECT_EQ(q.rejected(), 2u);

  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(out), 2u);
  EXPECT_TRUE(q.TryPush(5));  // drained -> accepting again
  EXPECT_EQ(q.rejected(), 2u);
}

TEST(BoundedMpscQueueTest, ZeroCapacityIsBumpedToOne) {
  BoundedMpscQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(BoundedMpscQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  BoundedMpscQueue<uint64_t> q(512);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t value =
            static_cast<uint64_t>(p) * kPerProducer + static_cast<uint64_t>(i);
        while (!q.TryPush(value)) std::this_thread::yield();
      }
    });
  }

  std::vector<uint64_t> received;
  while (received.size() <
         static_cast<size_t>(kProducers) * kPerProducer) {
    if (q.DrainInto(received) == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);

  // Every value arrives exactly once, and each producer's values arrive
  // in its own push order.
  std::vector<uint64_t> last_seen(kProducers, 0);
  std::vector<uint32_t> counts(kProducers, 0);
  for (uint64_t value : received) {
    const int p = static_cast<int>(value / kPerProducer);
    ASSERT_LT(p, kProducers);
    if (counts[p] > 0) {
      EXPECT_LT(last_seen[p], value);
    }
    last_seen[p] = value;
    ++counts[p];
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(counts[p], static_cast<uint32_t>(kPerProducer)) << "p=" << p;
  }
}

TEST(BoundedWorkQueueTest, FifoAndBatchDrain) {
  BoundedWorkQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_EQ(q.size(), 5u);

  int first = -1;
  EXPECT_TRUE(q.PopBlocking(&first));
  EXPECT_EQ(first, 0);

  std::vector<int> batch{-1};  // TryPopUpTo must append, not overwrite
  EXPECT_EQ(q.TryPopUpTo(3, &batch), 3u);
  EXPECT_EQ(batch, (std::vector<int>{-1, 1, 2, 3}));
  EXPECT_EQ(q.TryPopUpTo(10, &batch), 1u);  // only one item left
  EXPECT_EQ(batch.back(), 4);
  EXPECT_EQ(q.TryPopUpTo(10, &batch), 0u);
}

TEST(BoundedWorkQueueTest, FullAndClosedPushesRejectWithCount) {
  BoundedWorkQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  EXPECT_EQ(q.rejected(), 1u);

  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(4));  // closed
  EXPECT_EQ(q.rejected(), 2u);

  // Items queued before Close stay poppable (the server drains accepted
  // work on Stop); only then does PopBlocking report exhaustion.
  int out = -1;
  EXPECT_TRUE(q.PopBlocking(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.PopBlocking(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.PopBlocking(&out));
}

TEST(BoundedWorkQueueTest, ZeroCapacityIsBumpedToOne) {
  BoundedWorkQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(BoundedWorkQueueTest, CloseWakesBlockedConsumers) {
  BoundedWorkQueue<int> q(4);
  std::vector<std::thread> consumers;
  std::atomic<int> woke{0};
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int out;
      while (q.PopBlocking(&out)) {
      }
      ++woke;  // returns false only once closed and drained
    });
  }
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedWorkQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 5000;
  BoundedWorkQueue<uint64_t> q(64);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t value =
            static_cast<uint64_t>(p) * kPerProducer + static_cast<uint64_t>(i);
        while (!q.TryPush(value)) std::this_thread::yield();
      }
    });
  }

  std::mutex received_mu;
  std::vector<uint64_t> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t head;
      std::vector<uint64_t> batch;
      while (q.PopBlocking(&head)) {
        batch.clear();
        batch.push_back(head);
        q.TryPopUpTo(7, &batch);  // the worker-pool drain pattern
        std::lock_guard<std::mutex> lock(received_mu);
        received.insert(received.end(), batch.begin(), batch.end());
      }
    });
  }

  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(received.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
  std::vector<uint32_t> counts(kProducers, 0);
  for (uint64_t value : received) {
    const int p = static_cast<int>(value / kPerProducer);
    ASSERT_LT(p, kProducers);
    ++counts[p];
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(counts[p], static_cast<uint32_t>(kPerProducer)) << "p=" << p;
  }
}

}  // namespace
}  // namespace dgt
