#include "common/mpsc_queue.h"

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(BoundedMpscQueueTest, FifoOrderSingleProducer) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_EQ(q.size(), 5u);

  std::vector<int> out{-1};  // DrainInto must append, not overwrite
  EXPECT_EQ(q.DrainInto(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{-1, 0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.DrainInto(out), 0u);
}

TEST(BoundedMpscQueueTest, FullQueueRejectsWithBackpressureCount) {
  BoundedMpscQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4));
  EXPECT_EQ(q.rejected(), 2u);

  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(out), 2u);
  EXPECT_TRUE(q.TryPush(5));  // drained -> accepting again
  EXPECT_EQ(q.rejected(), 2u);
}

TEST(BoundedMpscQueueTest, ZeroCapacityIsBumpedToOne) {
  BoundedMpscQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
}

TEST(BoundedMpscQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  BoundedMpscQueue<uint64_t> q(512);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t value =
            static_cast<uint64_t>(p) * kPerProducer + static_cast<uint64_t>(i);
        while (!q.TryPush(value)) std::this_thread::yield();
      }
    });
  }

  std::vector<uint64_t> received;
  while (received.size() <
         static_cast<size_t>(kProducers) * kPerProducer) {
    if (q.DrainInto(received) == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);

  // Every value arrives exactly once, and each producer's values arrive
  // in its own push order.
  std::vector<uint64_t> last_seen(kProducers, 0);
  std::vector<uint32_t> counts(kProducers, 0);
  for (uint64_t value : received) {
    const int p = static_cast<int>(value / kPerProducer);
    ASSERT_LT(p, kProducers);
    if (counts[p] > 0) {
      EXPECT_LT(last_seen[p], value);
    }
    last_seen[p] = value;
    ++counts[p];
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(counts[p], static_cast<uint32_t>(kPerProducer)) << "p=" << p;
  }
}

}  // namespace
}  // namespace dgt
