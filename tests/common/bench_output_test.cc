#include "common/bench_output.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "gtest/gtest.h"

namespace dgt {
namespace {

namespace fs = std::filesystem;

class BenchOutputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tmp_ = fs::temp_directory_path() /
           ("dgt_bench_output_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(tmp_);
    unsetenv("DGT_OUT_DIR");
  }
  void TearDown() override {
    fs::remove_all(tmp_);
    unsetenv("DGT_OUT_DIR");
  }

  static std::string Resolve(std::vector<const char*> args) {
    args.insert(args.begin(), "bench");
    return ResolveOutDir(static_cast<int>(args.size()),
                         const_cast<char**>(args.data()));
  }

  fs::path tmp_;
};

TEST_F(BenchOutputTest, DefaultIsDgtResultsRelativeToCwd) {
  EXPECT_EQ(ResolveOutDir(0, nullptr), "dgt_results");
  EXPECT_EQ(Resolve({}), "dgt_results");
  EXPECT_EQ(Resolve({"--smoke", "--large"}), "dgt_results");
}

TEST_F(BenchOutputTest, FlagWithEqualsSign) {
  EXPECT_EQ(Resolve({"--out_dir=/tmp/x"}), "/tmp/x");
}

TEST_F(BenchOutputTest, FlagWithSeparateValue) {
  EXPECT_EQ(Resolve({"--out_dir", "/tmp/y"}), "/tmp/y");
}

TEST_F(BenchOutputTest, LastFlagWinsAndTrailingValuelessFlagIsIgnored) {
  EXPECT_EQ(Resolve({"--out_dir=/tmp/a", "--out_dir", "/tmp/b"}), "/tmp/b");
  EXPECT_EQ(Resolve({"--out_dir=/tmp/a", "--out_dir"}), "/tmp/a");
}

TEST_F(BenchOutputTest, EnvironmentVariableBeatsDefaultButNotFlag) {
  setenv("DGT_OUT_DIR", "/tmp/from_env", 1);
  EXPECT_EQ(Resolve({}), "/tmp/from_env");
  EXPECT_EQ(Resolve({"--out_dir=/tmp/flag"}), "/tmp/flag");
}

TEST_F(BenchOutputTest, EnsureDirCreatesNestedAndIsIdempotent) {
  const std::string nested = (tmp_ / "a" / "b").string();
  EXPECT_EQ(EnsureDir(nested), nested);
  EXPECT_TRUE(fs::is_directory(nested));
  EXPECT_EQ(EnsureDir(nested), nested);
  EXPECT_EQ(EnsureDir(""), "");
}

TEST_F(BenchOutputTest, WriterProducesFileAtResolvedPath) {
  BenchJsonWriter writer("unit", (tmp_ / "results").string());
  writer.AddPoint({{"n", 100.0}, {"steps", 42.0}});
  writer.AddPoint({{"n", 200.0}, {"steps", 57.5}});
  EXPECT_EQ(writer.path(),
            (tmp_ / "results" / "BENCH_unit.json").string());
  EXPECT_TRUE(writer.Write());
  ASSERT_TRUE(fs::exists(writer.path()));

  std::ifstream in(writer.path());
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"steps\": 57.5"), std::string::npos);
  // Every file records the process's peak RSS so memory acceptance
  // numbers live in the JSON (advisory for the baseline checker).
  EXPECT_NE(json.find("\"peak_rss_mb\": "), std::string::npos);
}

TEST_F(BenchOutputTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  // A running test binary has resident pages; a zero reading would mean
  // the getrusage plumbing broke.
  const double before = PeakRssMb();
  EXPECT_GT(before, 0.0);
  // Touching 32 MiB of fresh pages must raise the recorded peak — this
  // is what distinguishes peak RSS from a current-RSS (or bogus) reading.
  std::vector<char> ballast(32 * 1024 * 1024);
  for (size_t i = 0; i < ballast.size(); i += 4096) ballast[i] = 1;
  EXPECT_GE(PeakRssMb(), before + 16.0);
#else
  EXPECT_EQ(PeakRssMb(), 0.0);
#endif
}

TEST_F(BenchOutputTest, WriterIsBestEffortOnBadDir) {
  // A path under a regular file cannot be created; Write must fail
  // gracefully, not throw.
  const std::string file = (tmp_ / "plain_file").string();
  ASSERT_EQ(EnsureDir(tmp_.string()), tmp_.string());
  std::ofstream(file) << "x";
  BenchJsonWriter writer("unit", file + "/sub");
  writer.AddPoint({{"n", 1.0}});
  EXPECT_FALSE(writer.Write());

  BenchJsonWriter disabled("unit", "");
  EXPECT_EQ(disabled.path(), "");
  EXPECT_FALSE(disabled.Write());
}

}  // namespace
}  // namespace dgt
