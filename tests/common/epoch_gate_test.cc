#include "common/epoch_gate.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(EpochGateTest, ZeroReadersIsAPassThrough) {
  EpochGate gate;
  EXPECT_EQ(gate.num_readers(), 0u);
  gate.Publish(1);
  EXPECT_TRUE(gate.AwaitAllAcked(1));
  gate.Publish(2);
  EXPECT_TRUE(gate.AwaitAllAcked(2));
}

TEST(EpochGateTest, SingleReaderSeesPublishedEpochAndUnblocksWriter) {
  EpochGate gate;
  const uint32_t reader = gate.RegisterReader();
  EXPECT_EQ(reader, 0u);

  gate.Publish(1);
  EXPECT_EQ(gate.AwaitNewer(0), 1u);
  gate.Ack(reader, 1);
  EXPECT_TRUE(gate.AwaitAllAcked(1));
}

TEST(EpochGateTest, CancelReleasesWriterAndReaders) {
  EpochGate gate;
  const uint32_t reader = gate.RegisterReader();
  (void)reader;
  gate.Publish(1);

  std::thread writer([&] { EXPECT_FALSE(gate.AwaitAllAcked(1)); });
  std::thread waiting_reader([&] {
    // Epoch 1 is pending, so the reader drains it even during cancel...
    EXPECT_EQ(gate.AwaitNewer(0), 1u);
    // ...and then sees the cancel.
    EXPECT_EQ(gate.AwaitNewer(1), 0u);
  });
  gate.Cancel();
  writer.join();
  waiting_reader.join();
  EXPECT_TRUE(gate.cancelled());
}

// The load-bearing property: with an acking writer, every reader observes
// every epoch exactly once, in order.
TEST(EpochGateTest, EveryReaderObservesEveryEpochExactlyOnceInOrder) {
  constexpr uint32_t kReaders = 3;
  constexpr uint64_t kEpochs = 50;

  EpochGate gate;
  std::vector<uint32_t> ids;
  for (uint32_t r = 0; r < kReaders; ++r) ids.push_back(gate.RegisterReader());

  std::vector<std::vector<uint64_t>> observed(kReaders);
  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last = 0;
      for (;;) {
        const uint64_t epoch = gate.AwaitNewer(last);
        if (epoch == 0) return;
        observed[r].push_back(epoch);
        gate.Ack(ids[r], epoch);
        last = epoch;
      }
    });
  }

  for (uint64_t e = 1; e <= kEpochs; ++e) {
    gate.Publish(e);
    ASSERT_TRUE(gate.AwaitAllAcked(e)) << "epoch " << e;
  }
  gate.Cancel();
  for (auto& t : readers) t.join();

  for (uint32_t r = 0; r < kReaders; ++r) {
    ASSERT_EQ(observed[r].size(), kEpochs) << "reader " << r;
    for (uint64_t e = 1; e <= kEpochs; ++e) {
      EXPECT_EQ(observed[r][e - 1], e) << "reader " << r;
    }
  }
}

}  // namespace
}  // namespace dgt
