// Negative-compilation case: reads and writes a DGT_GUARDED_BY field
// without holding its mutex. Under Clang with -Werror=thread-safety this
// file MUST fail to compile; it must compile cleanly with the analysis
// off (proving the failure comes from the annotations, not a stray
// syntax error). Driven by run_negative_compile_test.py — this file is
// never part of any build target.
#include "common/thread_annotations.h"

namespace dgt {

class Counter {
 public:
  void Bump() { ++value_; }             // write without holding mu_
  int value() const { return value_; }  // read without holding mu_

 private:
  mutable Mutex mu_;
  int value_ DGT_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  c.Bump();
  return c.value();
}

}  // namespace dgt
