#!/usr/bin/env python3
"""Negative-compilation gate for src/common/thread_annotations.h.

Proves the DGT_* capability attributes are live, not decorative:

  unguarded_access.cc  MUST fail with -Werror=thread-safety
  double_acquire.cc    MUST fail with -Werror=thread-safety
  good_usage.cc        MUST pass  with -Werror=thread-safety

and every bad case must *pass* with the analysis off, so a failure can
only come from the annotations themselves (never a bad include path or a
typo, which would fail both ways).

Thread-safety analysis is a Clang feature; under any other compiler the
macros expand to nothing by design, so the suite exits 77 (the ctest
SKIP_RETURN_CODE) rather than pretending to prove anything.

Usage: run_negative_compile_test.py --compiler CXX --include SRC_DIR
"""

import argparse
import os
import subprocess
import sys

SKIP = 77
HERE = os.path.dirname(os.path.abspath(__file__))
BAD_CASES = ("unguarded_access.cc", "double_acquire.cc")
GOOD_CASES = ("good_usage.cc",)
ANALYSIS_FLAGS = ["-Wthread-safety", "-Werror=thread-safety"]


def compiler_is_clang(cxx):
    try:
        proc = subprocess.run([cxx, "--version"], capture_output=True,
                              text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return False
    return "clang" in (proc.stdout + proc.stderr).lower()


def compile_case(cxx, include, case, analysis):
    cmd = [cxx, "-std=c++17", "-fsyntax-only", "-I", include]
    if analysis:
        cmd += ANALYSIS_FLAGS
    cmd.append(os.path.join(HERE, case))
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    return proc.returncode == 0, proc.stderr


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("--compiler", required=True)
    parser.add_argument("--include", required=True,
                        help="the repo's src/ directory")
    args = parser.parse_args(argv)

    if not compiler_is_clang(args.compiler):
        print("SKIP: %s is not Clang; thread-safety analysis unavailable"
              % args.compiler)
        return SKIP

    failures = []
    for case in GOOD_CASES:
        ok, err = compile_case(args.compiler, args.include, case, True)
        if not ok:
            failures.append("%s: control case failed WITH analysis "
                            "(annotations reject correct code?):\n%s"
                            % (case, err))
    for case in BAD_CASES:
        ok, err = compile_case(args.compiler, args.include, case, False)
        if not ok:
            failures.append("%s: failed even WITHOUT analysis (broken "
                            "fixture, not an annotation catch):\n%s"
                            % (case, err))
            continue
        ok, err = compile_case(args.compiler, args.include, case, True)
        if ok:
            failures.append("%s: compiled WITH -Werror=thread-safety — "
                            "the annotations are dead" % case)
        elif "thread-safety" not in err:
            failures.append("%s: failed for a reason other than "
                            "thread-safety:\n%s" % (case, err))
        else:
            print("%s: rejected by the analysis, as required" % case)

    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    print("negative-compilation suite: %d bad case(s) rejected, "
          "%d control(s) accepted" % (len(BAD_CASES), len(GOOD_CASES)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
