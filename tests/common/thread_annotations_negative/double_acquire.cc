// Negative-compilation case: acquires an annotated Mutex twice on the
// same path (and the matching double release). Under Clang with
// -Werror=thread-safety this MUST fail to compile; with the analysis off
// it must compile (std::mutex would deadlock at runtime — the point of
// the annotations is that this never gets that far). Driven by
// run_negative_compile_test.py — never part of any build target.
#include "common/thread_annotations.h"

namespace dgt {

int DoubleAcquire() {
  Mutex mu;
  mu.Lock();
  mu.Lock();  // second acquisition of a capability already held
  mu.Unlock();
  mu.Unlock();
  return 0;
}

}  // namespace dgt
