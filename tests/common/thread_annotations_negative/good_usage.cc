// Negative-compilation control: the same shape as unguarded_access.cc
// but with correct locking. MUST compile cleanly even under Clang with
// -Werror=thread-safety — this guards the suite against the trivial
// failure mode where *everything* fails to compile (say, a broken
// include path) and the bad cases "fail" for the wrong reason.
#include "common/thread_annotations.h"

namespace dgt {

class Counter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++value_;
  }
  int value() const {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ DGT_GUARDED_BY(mu_) = 0;
};

int Use() {
  Counter c;
  c.Bump();
  return c.value();
}

}  // namespace dgt
