#include "common/status.h"

#include <string>

#include "common/result.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::Internal("f"), StatusCode::kInternal, "Internal"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::IoError("h"), StatusCode::kIoError, "IoError"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(copy);
  EXPECT_EQ(moved, s);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  DGT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> MakeEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x;
}

Result<int> DoubleEven(int x) {
  DGT_ASSIGN_OR_RETURN(int v, MakeEven(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubleEven(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  Result<int> err = DoubleEven(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, CopyableWhenValueIs) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  Result<std::vector<int>> copy = r;
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy.value().size(), 3u);
  EXPECT_EQ(r.value().size(), 3u);
}

}  // namespace
}  // namespace dgt
