#include "common/histogram.h"

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "graph/graph_stats.h"
#include "graph/pa_generator.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(HistogramTest, RejectsBadConfig) {
  EXPECT_FALSE(Histogram::Create(1.0, 1.0, 4).ok());
  EXPECT_FALSE(Histogram::Create(2.0, 1.0, 4).ok());
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
}

TEST(HistogramTest, BinsValues) {
  auto h = Histogram::Create(0.0, 1.0, 4).value();
  h.Add(0.1);   // bin 0
  h.Add(0.3);   // bin 1
  h.Add(0.55);  // bin 2
  h.Add(0.9);   // bin 3
  h.Add(0.95);  // bin 3
  EXPECT_EQ(h.total_count(), 5u);
  EXPECT_EQ(h.BinValue(0), 1u);
  EXPECT_EQ(h.BinValue(1), 1u);
  EXPECT_EQ(h.BinValue(2), 1u);
  EXPECT_EQ(h.BinValue(3), 2u);
}

TEST(HistogramTest, OutOfRangeClampedToEdgeBins) {
  auto h = Histogram::Create(0.0, 1.0, 2).value();
  h.Add(-5.0);
  h.Add(99.0);
  h.Add(1.0);  // hi is exclusive; clamps into the last bin
  EXPECT_EQ(h.BinValue(0), 1u);
  EXPECT_EQ(h.BinValue(1), 2u);
}

// Regression: clamping used to be silent — a mis-sized range fattened
// the edge bins with no trace. The counters record every clamp without
// changing the binning (bin counts and total above stay as they were).
TEST(HistogramTest, ClampingIsCounted) {
  auto h = Histogram::Create(0.0, 1.0, 2).value();
  EXPECT_EQ(h.underflow_count(), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  h.Add(-5.0);  // underflow
  h.Add(0.25);  // in range
  h.Add(99.0);  // overflow
  h.Add(1.0);   // hi is exclusive: also overflow
  EXPECT_EQ(h.underflow_count(), 1u);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.BinValue(0), 2u);
  EXPECT_EQ(h.BinValue(1), 2u);

  std::ostringstream os;
  h.Print(os);
  EXPECT_NE(os.str().find("1 underflow, 2 overflow"), std::string::npos);

  // In-range-only histograms keep the old Print output exactly.
  auto clean = Histogram::Create(0.0, 1.0, 2).value();
  clean.Add(0.5);
  std::ostringstream clean_os;
  clean.Print(clean_os);
  EXPECT_EQ(clean_os.str().find("clamped"), std::string::npos);
}

TEST(HistogramTest, BinEdges) {
  auto h = Histogram::Create(0.0, 10.0, 5).value();
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLow(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLow(5), 10.0);
}

TEST(HistogramTest, PrintShowsBarsAndCounts) {
  auto h = Histogram::Create(0.0, 1.0, 2).value();
  for (int i = 0; i < 8; ++i) h.Add(0.25);
  h.Add(0.75);
  std::ostringstream os;
  h.Print(os, 8);
  std::string out = os.str();
  EXPECT_NE(out.find("########"), std::string::npos);
  EXPECT_NE(out.find(" 8"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(HistogramTest, AddAll) {
  auto h = Histogram::Create(0.0, 1.0, 2).value();
  h.AddAll({0.1, 0.2, 0.8});
  EXPECT_EQ(h.total_count(), 3u);
}

TEST(ComplementaryCdfTest, EmptyInput) {
  EXPECT_TRUE(ComplementaryCdf({}).empty());
}

TEST(ComplementaryCdfTest, KnownSample) {
  // Sample {1, 1, 2, 4}: P(X>=0)=1, P(X>=1)=1, P(X>=2)=0.5,
  // P(X>=3)=0.25, P(X>=4)=0.25.
  auto ccdf = ComplementaryCdf({1, 1, 2, 4});
  ASSERT_EQ(ccdf.size(), 5u);
  EXPECT_DOUBLE_EQ(ccdf[0], 1.0);
  EXPECT_DOUBLE_EQ(ccdf[1], 1.0);
  EXPECT_DOUBLE_EQ(ccdf[2], 0.5);
  EXPECT_DOUBLE_EQ(ccdf[3], 0.25);
  EXPECT_DOUBLE_EQ(ccdf[4], 0.25);
}

TEST(ComplementaryCdfTest, MonotoneNonIncreasing) {
  Rng rng(3);
  std::vector<uint32_t> sample(500);
  for (auto& v : sample) v = static_cast<uint32_t>(rng.NextBelow(50));
  auto ccdf = ComplementaryCdf(sample);
  for (size_t k = 1; k < ccdf.size(); ++k) EXPECT_LE(ccdf[k], ccdf[k - 1]);
}

TEST(PowerLawKsTest, RejectsBadInput) {
  EXPECT_FALSE(PowerLawKsDistance({5, 6}, 2, 1.0).ok());
  EXPECT_FALSE(PowerLawKsDistance({1, 1}, 5, 2.5).ok());
}

TEST(PowerLawKsTest, ExactPowerLawScoresLow) {
  // Draw from a discretised Pareto with alpha = 2.5 via inverse CDF.
  Rng rng(7);
  std::vector<uint32_t> sample(20000);
  const double alpha = 2.5;
  for (auto& v : sample) {
    double u = 1.0 - rng.NextDouble();
    v = static_cast<uint32_t>(2.0 * std::pow(u, -1.0 / (alpha - 1.0)));
  }
  auto ks = PowerLawKsDistance(sample, 2, alpha);
  ASSERT_TRUE(ks.ok());
  EXPECT_LT(ks.value(), 0.1);
}

TEST(PowerLawKsTest, UniformSampleScoresHigh) {
  Rng rng(9);
  std::vector<uint32_t> sample(5000);
  for (auto& v : sample) {
    v = 2 + static_cast<uint32_t>(rng.NextBelow(20));
  }
  auto ks = PowerLawKsDistance(sample, 2, 2.5);
  ASSERT_TRUE(ks.ok());
  EXPECT_GT(ks.value(), 0.3);
}

TEST(PowerLawKsTest, PaDegreesAreMorePowerLawThanErdosRenyi) {
  PaOptions o;
  o.num_nodes = 4000;
  o.edges_per_node = 2;
  o.seed = 11;
  Graph pa = GeneratePreferentialAttachment(o).value();
  std::vector<uint32_t> pa_deg(pa.num_nodes());
  for (NodeId u = 0; u < pa.num_nodes(); ++u) pa_deg[u] = pa.Degree(u);
  double alpha = EstimatePowerLawExponent(pa, 2);
  auto pa_ks = PowerLawKsDistance(pa_deg, 2, alpha);
  ASSERT_TRUE(pa_ks.ok());
  // The PA tail fits its own MLE alpha closely.
  EXPECT_LT(pa_ks.value(), 0.15);
}

}  // namespace
}  // namespace dgt
