#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 123, s2 = 123;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t s = 0;
  uint64_t a = SplitMix64(s);
  uint64_t b = SplitMix64(s);
  EXPECT_NE(a, b);
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit in 1000 draws
}

TEST(RngTest, NextIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(4, 4), 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(29);
  const int kN = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / kN;
  double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, DiscreteMatchesWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 0.0, 3.0};
  const int kN = 60000;
  std::vector<int> hits(3, 0);
  for (int i = 0; i < kN; ++i) ++hits[rng.NextDiscrete(w)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[0]) / kN, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[2]) / kN, 0.75, 0.01);
}

TEST(RngTest, DiscreteSingleton) {
  Rng rng(37);
  std::vector<double> w = {5.0};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextDiscrete(w), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(41);
  for (uint32_t n : {1u, 2u, 5u, 10u, 100u}) {
    for (uint32_t k = 0; k <= n; k += std::max(1u, n / 4)) {
      auto s = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(s.size(), k);
      std::set<uint32_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k) << "duplicates for n=" << n << " k=" << k;
      for (uint32_t v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSetIsPermutation) {
  Rng rng(43);
  auto s = rng.SampleWithoutReplacement(20, 20);
  std::sort(s.begin(), s.end());
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleWithoutReplacementUniformCoverage) {
  // Every element should be sampled roughly equally often.
  Rng rng(47);
  const int kTrials = 30000;
  std::vector<int> hits(10, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (uint32_t v : rng.SampleWithoutReplacement(10, 3)) ++hits[v];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / (kTrials * 3), 0.1, 0.01);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto copy = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(RngTest, ShuffleChangesOrder) {
  Rng rng(59);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(61);
  Rng fork = a.Fork();
  // Fork must differ from parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == fork.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkDeterministicGivenParentSeed) {
  Rng a(71), b(71);
  Rng fa = a.Fork(), fb = b.Fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.NextU64(), fb.NextU64());
}

TEST(RngTest, StreamAtIsAPureFunctionOfSeedStreamCounter) {
  Rng a(42), b(42);
  // Consuming state must not change the derived streams (unlike Fork):
  // that is what makes StreamAt safe to call from any worker in any order.
  for (int i = 0; i < 10; ++i) a.NextU64();
  Rng sa = a.StreamAt(7, 3), sb = b.StreamAt(7, 3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sa.NextU64(), sb.NextU64());
}

TEST(RngTest, StreamAtDistinctStreamsDiverge) {
  Rng root(42);
  // Adjacent (stream, counter) pairs — the gossip engines' (node, step)
  // lattice — must produce unrelated draws.
  Rng s00 = root.StreamAt(0, 0);
  Rng s01 = root.StreamAt(0, 1);
  Rng s10 = root.StreamAt(1, 0);
  int eq01 = 0, eq10 = 0;
  for (int i = 0; i < 100; ++i) {
    uint64_t v = s00.NextU64();
    if (v == s01.NextU64()) ++eq01;
    if (v == s10.NextU64()) ++eq10;
  }
  EXPECT_LT(eq01, 3);
  EXPECT_LT(eq10, 3);
}

TEST(RngTest, StreamAtSurvivesCopies) {
  Rng root(9);
  Rng copy = root;
  copy.NextU64();
  Rng sa = root.StreamAt(5, 11), sb = copy.StreamAt(5, 11);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sa.NextU64(), sb.NextU64());
}

TEST(RngTest, StreamAtDrawsAreWellDistributed) {
  // First draw across a lattice of streams should look uniform (the
  // engines draw push targets from exactly this pattern).
  Rng root(1234);
  const int kStreams = 5000;
  int counts[16] = {0};
  for (int s = 0; s < kStreams; ++s) {
    for (int step = 0; step < 4; ++step) {
      Rng r = root.StreamAt(s, step);
      ++counts[r.NextBelow(16)];
    }
  }
  const double expected = kStreams * 4 / 16.0;
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(counts[b] / expected, 1.0, 0.1) << "bucket " << b;
  }
}

TEST(Mix64Test, PureAndAvalanching) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int b = 0; b < 64; ++b) {
    uint64_t d = Mix64(0x12345678u) ^ Mix64(0x12345678u ^ (1ull << b));
    total_flips += __builtin_popcountll(d);
  }
  EXPECT_NEAR(total_flips / 64.0, 32.0, 6.0);
}

class RngBitUniformityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBitUniformityTest, EachBitIsUnbiased) {
  Rng rng(GetParam());
  const int kN = 20000;
  int counts[64] = {0};
  for (int i = 0; i < kN; ++i) {
    uint64_t v = rng.NextU64();
    for (int b = 0; b < 64; ++b) counts[b] += (v >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / kN, 0.5, 0.02)
        << "bit " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBitUniformityTest,
                         ::testing::Values(1, 2, 1234567, 0xdeadbeef));

}  // namespace
}  // namespace dgt
