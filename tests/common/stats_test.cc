#include "common/stats.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 9.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(-5, 5);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats before = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), before.mean());
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 1.5);
}

TEST(SummaryTest, Empty) {
  Summary s({});
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(SummaryTest, QuantilesOfKnownData) {
  Summary s({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SummaryTest, InterpolatedQuantile) {
  Summary s({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.75), 7.5);
}

TEST(SummaryTest, QuantileClamped) {
  Summary s({1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.Quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(2.0), 2.0);
}

TEST(SummaryTest, UnsortedInputIsSorted) {
  Summary s({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(ErrorMetricsTest, RmsErrorKnown) {
  EXPECT_DOUBLE_EQ(RmsError({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(RmsError({0.0, 0.0}, {3.0, 4.0}),
                   std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(ErrorMetricsTest, MaxAbsErrorKnown) {
  EXPECT_DOUBLE_EQ(MaxAbsError({1.0, 5.0}, {2.0, 1.0}), 4.0);
  EXPECT_DOUBLE_EQ(MaxAbsError({}, {}), 0.0);
}

TEST(ErrorMetricsTest, MeanRelativeErrorKnown) {
  // |1-2|/2 = 0.5, |3-4|/4 = 0.25 -> mean 0.375
  EXPECT_DOUBLE_EQ(MeanRelativeError({1.0, 3.0}, {2.0, 4.0}), 0.375);
}

TEST(ErrorMetricsTest, MeanRelativeErrorEpsGuard) {
  // Reference 0 uses eps floor instead of dividing by zero.
  double v = MeanRelativeError({1.0}, {0.0}, 0.5);
  EXPECT_DOUBLE_EQ(v, 2.0);
}

}  // namespace
}  // namespace dgt
