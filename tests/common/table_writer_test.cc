#include "common/table_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"

namespace dgt {
namespace {

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(TableWriterTest, PrintAlignsColumns) {
  TableWriter t("My Table");
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableWriterTest, NumericRowFormatting) {
  TableWriter t("");
  t.AddNumericRow({1.23456, 2.0}, 3);
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
  EXPECT_NE(os.str().find("2.000"), std::string::npos);
}

TEST(TableWriterTest, RaggedRowsTolerated) {
  TableWriter t("");
  t.SetHeader({"a"});
  t.AddRow({"1", "2", "3"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_NE(os.str().find("3"), std::string::npos);
}

TEST(TableWriterTest, CsvRoundTrip) {
  TableWriter t("title is not written to csv");
  t.SetHeader({"n", "steps"});
  t.AddRow({"100", "29"});
  t.AddRow({"1000", "52"});
  std::string path = TmpPath("table_writer_test.csv");
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "n,steps");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "100,29");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1000,52");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(TableWriterTest, CsvEscapesSpecialCells) {
  TableWriter t("");
  t.AddRow({std::string("a,b"), std::string("quote\"inside")});
  std::string path = TmpPath("table_writer_escape.csv");
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "\"a,b\",\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(TableWriterTest, CsvBadPathFails) {
  TableWriter t("");
  t.AddRow({"x"});
  Status s = t.WriteCsv("/nonexistent-dir-zzz/file.csv");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(TableWriterTest, EmptyTablePrintsNothingButTitle) {
  TableWriter t("only-title");
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str(), "only-title\n");
}

}  // namespace
}  // namespace dgt
