#!/usr/bin/env python3
"""Golden-corpus tests for tools/dgt_lint.py.

Fixtures live in tests/tools/corpus/ with a .txt suffix so the linter's
own directory walks (and the repo-tree-clean ctest) never pick them up.
Each test copies a fixture into a temporary tree under the relative path
whose exemption behaviour it wants to exercise (src/, common/, tools/,
tests/), then lints it there.

The hash-order positive corpus embeds the verbatim pre-fix
WeightTable::TotalExcessWeight loop from PR 5 — the bug that motivated
the linter — and asserts it is flagged on exactly that line.
"""

import importlib.util
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

TEST_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(TEST_DIR))
LINT_PATH = os.path.join(REPO_ROOT, "tools", "dgt_lint.py")
CORPUS_DIR = os.path.join(TEST_DIR, "corpus")

_spec = importlib.util.spec_from_file_location("dgt_lint", LINT_PATH)
dgt_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(dgt_lint)


def fixture_path(name):
    return os.path.join(CORPUS_DIR, name)


def fixture_lines(name):
    with open(fixture_path(name), encoding="utf-8") as f:
        return f.read().splitlines()


def line_of(name, needle):
    """1-based line number of the first fixture line containing needle."""
    for idx, line in enumerate(fixture_lines(name), start=1):
        if needle in line:
            return idx
    raise AssertionError("%s: no line contains %r" % (name, needle))


def lint_fixture(name, rel_path):
    """Copy corpus fixture `name` to <tmp>/<rel_path> and lint it there."""
    with tempfile.TemporaryDirectory() as tmp:
        dst = os.path.join(tmp, rel_path)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copyfile(fixture_path(name), dst)
        return dgt_lint.lint_file(dst)


def rules_of(findings):
    return [f.rule for f in findings]


class HashOrderTest(unittest.TestCase):
    def test_prefix_total_excess_weight_must_flag(self):
        # The verbatim PR 5 bug: flagged, on the loop's own line.
        findings = lint_fixture("hash_order_positive.cc.txt", "src/weights.cc")
        want_line = line_of("hash_order_positive.cc.txt",
                            "for (const auto& [i, w] : entries_)")
        hits = [f for f in findings
                if f.rule == "hash-order" and f.line == want_line]
        self.assertEqual(
            len(hits), 1,
            "pre-fix TotalExcessWeight loop not flagged; findings: %s"
            % [str(f) for f in findings])
        self.assertIn("entries_", hits[0].message)

    def test_all_positive_loops_flagged(self):
        findings = lint_fixture("hash_order_positive.cc.txt", "src/weights.cc")
        self.assertEqual(rules_of(findings), ["hash-order"] * 4,
                         [str(f) for f in findings])
        got_lines = {f.line for f in findings}
        for needle in ("for (const auto& [i, w] : entries_)",
                       "for (const auto& kv : values)",
                       "for (const auto& [k, w] : table.entries())",
                       "for (const auto& [k, v] : scores)"):
            self.assertIn(line_of("hash_order_positive.cc.txt", needle),
                          got_lines, needle)

    def test_negatives_stay_clean(self):
        findings = lint_fixture("hash_order_negative.cc.txt", "src/agg.cc")
        self.assertEqual(findings, [], [str(f) for f in findings])


class RawTimeTest(unittest.TestCase):
    def test_all_sources_flagged_in_src(self):
        findings = lint_fixture("raw_time_positive.cc.txt", "src/clock.cc")
        self.assertEqual(rules_of(findings), ["raw-time"] * 4,
                         [str(f) for f in findings])

    def test_path_exemptions(self):
        for rel in ("tools/clock.cc", "src/bench_util.cc",
                    "src/common/rng.h"):
            findings = lint_fixture("raw_time_positive.cc.txt", rel)
            self.assertEqual(findings, [],
                             "%s: %s" % (rel, [str(f) for f in findings]))


class RawThreadTest(unittest.TestCase):
    def test_flagged_in_src(self):
        findings = lint_fixture("raw_thread_positive.cc.txt", "src/spawn.cc")
        self.assertEqual(rules_of(findings), ["raw-thread"],
                         [str(f) for f in findings])

    def test_path_exemptions(self):
        for rel in ("src/common/spawn.cc", "tests/spawn.cc",
                    "src/serve/spawn_test.cc"):
            findings = lint_fixture("raw_thread_positive.cc.txt", rel)
            self.assertEqual(findings, [],
                             "%s: %s" % (rel, [str(f) for f in findings]))


class FloatEqTest(unittest.TestCase):
    def test_positives_flagged(self):
        findings = lint_fixture("float_eq_positive.cc.txt", "src/cmp.cc")
        self.assertEqual(rules_of(findings), ["float-eq"] * 2,
                         [str(f) for f in findings])
        lines = {f.line for f in findings}
        self.assertIn(line_of("float_eq_positive.cc.txt", "x == 0.5"), lines)
        self.assertIn(line_of("float_eq_positive.cc.txt", "a != b"), lines)

    def test_negatives_stay_clean(self):
        findings = lint_fixture("float_eq_negative.cc.txt", "src/cmp.cc")
        self.assertEqual(findings, [], [str(f) for f in findings])

    def test_test_files_exempt(self):
        findings = lint_fixture("float_eq_positive.cc.txt", "src/cmp_test.cc")
        self.assertEqual(findings, [], [str(f) for f in findings])

    def test_python_rule_and_suppression(self):
        findings = lint_fixture("float_eq.py.txt", "scripts/check.py")
        self.assertEqual(rules_of(findings), ["float-eq"],
                         [str(f) for f in findings])
        self.assertEqual(findings[0].line,
                         line_of("float_eq.py.txt", "x == 0.25"))

    def test_python_test_files_exempt(self):
        findings = lint_fixture("float_eq.py.txt", "tests/check.py")
        self.assertEqual(findings, [], [str(f) for f in findings])


class SuppressionTest(unittest.TestCase):
    def test_valid_suppressions_hold_invalid_ones_do_not(self):
        findings = lint_fixture("suppression.cc.txt", "src/owner.cc")
        self.assertEqual(rules_of(findings), ["raw-thread"] * 3,
                         [str(f) for f in findings])
        got = {f.line for f in findings}
        name = "suppression.cc.txt"
        for suppressed in ("std::thread a", "std::thread b"):
            self.assertNotIn(line_of(name, suppressed), got, suppressed)
        for flagged in ("std::thread c", "std::thread d", "std::thread e"):
            self.assertIn(line_of(name, flagged), got, flagged)


class CliTest(unittest.TestCase):
    def run_cli(self, *argv):
        return subprocess.run([sys.executable, LINT_PATH, *argv],
                              capture_output=True, text=True)

    def test_findings_exit_1(self):
        with tempfile.TemporaryDirectory() as tmp:
            dst = os.path.join(tmp, "src", "weights.cc")
            os.makedirs(os.path.dirname(dst))
            shutil.copyfile(fixture_path("hash_order_positive.cc.txt"), dst)
            proc = self.run_cli(tmp)
            self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
            self.assertIn("hash-order", proc.stdout)

    def test_clean_tree_exit_0(self):
        with tempfile.TemporaryDirectory() as tmp:
            dst = os.path.join(tmp, "src", "agg.cc")
            os.makedirs(os.path.dirname(dst))
            shutil.copyfile(fixture_path("hash_order_negative.cc.txt"), dst)
            proc = self.run_cli(tmp)
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
            self.assertEqual(proc.stdout, "")

    def test_missing_path_exit_2(self):
        proc = self.run_cli("/no/such/path/anywhere")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules", ".")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertEqual(proc.stdout.split(), list(dgt_lint.RULES))


if __name__ == "__main__":
    unittest.main()
