#include <cmath>
#include <numeric>

#include "baselines/eigen_trust.h"
#include "baselines/gossip_trust.h"
#include "reputation/reference.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

TEST(EigenTrustTest, RejectsBadConfig) {
  TrustMatrix t(5);
  EigenTrustOptions o;
  o.damping = -0.1;
  EXPECT_FALSE(ComputeEigenTrust(t, o).ok());
  o.damping = 0.15;
  o.pretrusted = {9};
  EXPECT_FALSE(ComputeEigenTrust(t, o).ok());
  TrustMatrix empty(0);
  EXPECT_FALSE(ComputeEigenTrust(empty, {}).ok());
}

TEST(EigenTrustTest, ScoresFormDistribution) {
  Graph g = MakePaGraph(50);
  TrustMatrix t(50);
  FillTrust(g, &t, 100);
  auto r = ComputeEigenTrust(t, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double sum = std::accumulate(r->scores.begin(), r->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double v : r->scores) EXPECT_GE(v, 0.0);
}

TEST(EigenTrustTest, HighQualityNodesScoreHigher) {
  // Build a matrix where node 0 is loved and node 1 is hated by everyone.
  TrustMatrix t(10);
  for (NodeId i = 2; i < 10; ++i) {
    ASSERT_TRUE(t.Set(i, 0, 1.0).ok());
    ASSERT_TRUE(t.Set(i, 1, 0.05).ok());
  }
  ASSERT_TRUE(t.Set(0, 2, 0.5).ok());
  ASSERT_TRUE(t.Set(1, 2, 0.5).ok());
  auto r = ComputeEigenTrust(t, {});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->scores[0], r->scores[1] * 3);
}

TEST(EigenTrustTest, PretrustedPeersAnchorScores) {
  TrustMatrix t(6);  // no opinions at all: scores collapse to p
  EigenTrustOptions o;
  o.pretrusted = {2, 3};
  auto r = ComputeEigenTrust(t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->scores[2], 0.5, 1e-9);
  EXPECT_NEAR(r->scores[3], 0.5, 1e-9);
  EXPECT_NEAR(r->scores[0], 0.0, 1e-9);
}

TEST(EigenTrustTest, DampingOneIsRestartDistribution) {
  Graph g = MakePaGraph(20);
  TrustMatrix t(20);
  FillTrust(g, &t, 101);
  EigenTrustOptions o;
  o.damping = 1.0;
  auto r = ComputeEigenTrust(t, o);
  ASSERT_TRUE(r.ok());
  for (double v : r->scores) EXPECT_NEAR(v, 1.0 / 20.0, 1e-12);
}

TEST(EigenTrustTest, Deterministic) {
  Graph g = MakePaGraph(30);
  TrustMatrix t(30);
  FillTrust(g, &t, 102);
  auto a = ComputeEigenTrust(t, {});
  auto b = ComputeEigenTrust(t, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->scores, b->scores);
  EXPECT_EQ(a->iterations, b->iterations);
}

TEST(GossipTrustTest, GlobalValuesMatchAllNodesMeans) {
  Graph g = MakePaGraph(50, 2, 103);
  TrustMatrix t(50);
  FillTrust(g, &t, 104);
  AggregationOptions o;
  o.gossip.xi = 1e-10;
  auto r = AggregateGossipTrust(g, t, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.converged);
  auto truth = ExactGlobalMeanAllVector(t);
  ASSERT_EQ(r->global.size(), 50u);
  for (NodeId j = 0; j < 50; ++j) {
    EXPECT_NEAR(r->global[j], truth[j], 5e-3) << "target " << j;
  }
}

TEST(GossipTrustTest, AllObserversAgree) {
  // GossipTrust is a *global* scheme: every observer converges to the
  // same value (up to gossip error) — unlike GCLR.
  Graph g = MakePaGraph(40, 2, 105);
  TrustMatrix t(40);
  FillTrust(g, &t, 106);
  AggregationOptions o;
  o.gossip.xi = 1e-10;
  auto r = AggregateGossipTrust(g, t, o);
  ASSERT_TRUE(r.ok());
  for (NodeId j = 0; j < 40; ++j) {
    for (NodeId i = 1; i < 40; ++i) {
      EXPECT_NEAR(r->estimates[i][j], r->estimates[0][j], 1e-2);
    }
  }
}

TEST(GossipTrustTest, ForcesUniformStrategy) {
  // Even if the caller asks for differential, the baseline runs plain
  // push (that is what it models); verify it still converges correctly.
  Graph g = MakePaGraph(30, 2, 107);
  TrustMatrix t(30);
  FillTrust(g, &t, 108);
  AggregationOptions o;
  o.gossip.strategy = PushStrategy::kDifferential;
  o.gossip.xi = 1e-9;
  auto r = AggregateGossipTrust(g, t, o);
  ASSERT_TRUE(r.ok());
  auto truth = ExactGlobalMeanAllVector(t);
  for (NodeId j = 0; j < 30; ++j) {
    EXPECT_NEAR(r->global[j], truth[j], 5e-3);
  }
}

}  // namespace
}  // namespace dgt
