#include "baselines/power_trust.h"

#include <numeric>

#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

TEST(PowerTrustTest, RejectsBadConfig) {
  TrustMatrix t(5);
  PowerTrustOptions o;
  o.num_power_nodes = 0;
  EXPECT_FALSE(ComputePowerTrust(t, o).ok());
  o = {};
  o.power_weight = 0.5;
  EXPECT_FALSE(ComputePowerTrust(t, o).ok());
  TrustMatrix empty(0);
  EXPECT_FALSE(ComputePowerTrust(empty, {}).ok());
}

TEST(PowerTrustTest, ScoresFormDistribution) {
  Graph g = MakePaGraph(60, 2, 110);
  TrustMatrix t(60);
  FillTrust(g, &t, 111);
  auto r = ComputePowerTrust(t, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double sum = std::accumulate(r->scores.begin(), r->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (double v : r->scores) EXPECT_GE(v, 0.0);
}

TEST(PowerTrustTest, PowerNodesAreTopScores) {
  Graph g = MakePaGraph(60, 2, 112);
  TrustMatrix t(60);
  FillTrust(g, &t, 113);
  PowerTrustOptions o;
  o.num_power_nodes = 5;
  auto r = ComputePowerTrust(t, o);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->power_nodes.size(), 5u);
  // Every reported power node outranks every non-power node.
  double min_power = 1.0;
  for (NodeId p : r->power_nodes) {
    min_power = std::min(min_power, r->scores[p]);
  }
  for (NodeId v = 0; v < 60; ++v) {
    bool is_power = false;
    for (NodeId p : r->power_nodes) is_power |= (p == v);
    if (!is_power) {
      EXPECT_LE(r->scores[v], min_power + 1e-12);
    }
  }
}

TEST(PowerTrustTest, WellRatedNodeWins) {
  TrustMatrix t(8);
  for (NodeId i = 1; i < 8; ++i) {
    ASSERT_TRUE(t.Set(i, 0, 0.95).ok());
    if (i >= 2) {
      ASSERT_TRUE(t.Set(i, 1, 0.05).ok());
    }
  }
  ASSERT_TRUE(t.Set(0, 2, 0.5).ok());
  auto r = ComputePowerTrust(t, {});
  ASSERT_TRUE(r.ok());
  for (NodeId v = 1; v < 8; ++v) EXPECT_GT(r->scores[0], r->scores[v]);
  EXPECT_EQ(r->power_nodes.front(), 0u);
}

TEST(PowerTrustTest, Deterministic) {
  Graph g = MakePaGraph(40, 2, 114);
  TrustMatrix t(40);
  FillTrust(g, &t, 115);
  auto a = ComputePowerTrust(t, {});
  auto b = ComputePowerTrust(t, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->scores, b->scores);
  EXPECT_EQ(a->power_nodes, b->power_nodes);
}

TEST(PowerTrustTest, PowerWeightOneMatchesPlainIteration) {
  // With power_weight = 1 the boost disappears; the fixed point is the
  // same regardless of num_power_nodes.
  Graph g = MakePaGraph(40, 2, 116);
  TrustMatrix t(40);
  FillTrust(g, &t, 117);
  PowerTrustOptions a;
  a.power_weight = 1.0;
  a.num_power_nodes = 3;
  PowerTrustOptions b;
  b.power_weight = 1.0;
  b.num_power_nodes = 17;
  auto ra = ComputePowerTrust(t, a);
  auto rb = ComputePowerTrust(t, b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  for (NodeId v = 0; v < 40; ++v) {
    EXPECT_NEAR(ra->scores[v], rb->scores[v], 1e-8);
  }
}

TEST(PowerTrustTest, BoostAmplifiesPowerNodesOpinions) {
  // Node 0 is the designated power node (everyone rates it highly); it
  // rates node 1 highly and node 2 poorly. Boosting node 0's opinions
  // must widen the gap between nodes 1 and 2.
  TrustMatrix t(6);
  for (NodeId i = 1; i < 6; ++i) ASSERT_TRUE(t.Set(i, 0, 0.9).ok());
  ASSERT_TRUE(t.Set(0, 1, 0.9).ok());
  ASSERT_TRUE(t.Set(0, 2, 0.1).ok());
  ASSERT_TRUE(t.Set(3, 1, 0.3).ok());
  ASSERT_TRUE(t.Set(3, 2, 0.3).ok());

  PowerTrustOptions weak;
  weak.num_power_nodes = 1;
  weak.power_weight = 1.0;
  PowerTrustOptions strong;
  strong.num_power_nodes = 1;
  strong.power_weight = 8.0;
  auto rw = ComputePowerTrust(t, weak);
  auto rs = ComputePowerTrust(t, strong);
  ASSERT_TRUE(rw.ok() && rs.ok());
  // Global normalisation dilutes absolute gaps; the boost shows up in the
  // ratio of the two targets' scores.
  double ratio_weak = rw->scores[1] / rw->scores[2];
  double ratio_strong = rs->scores[1] / rs->scores[2];
  EXPECT_GT(ratio_strong, ratio_weak);
}

}  // namespace
}  // namespace dgt
