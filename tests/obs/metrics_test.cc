// obs/metrics.h contract tests: log-linear bucket math (coverage,
// monotonicity, bounded relative error), snapshot merge algebra
// (associative + commutative, the property that lets per-thread
// recorders fold in any order), exposition goldens for the JSON and
// Prometheus text formats, callback-gauge token semantics, and a
// concurrent increment/record/snapshot stress that the TSan CI leg runs
// to certify the lock-free hot path.

#include "obs/metrics.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dgt {
namespace obs {
namespace {

TEST(HistogramBucketsTest, SmallValuesGetExactUnitBuckets) {
  for (uint64_t v = 0; v < 2 * kHistogramSubBuckets; ++v) {
    // [0, 32): the unit buckets plus the first power-of-two band, whose
    // sub-buckets are still width 1.
    const uint32_t idx = HistogramBucketIndex(v);
    EXPECT_EQ(HistogramBucketLow(idx), v);
    EXPECT_EQ(HistogramBucketHigh(idx), v);
  }
}

TEST(HistogramBucketsTest, EveryValueFallsInsideItsBucket) {
  std::vector<uint64_t> probes = {0, 1, 15, 16, 31, 32, 33, 100, 1000,
                                  4095, 4096, 65535, 1u << 20,
                                  uint64_t{1} << 40, UINT64_MAX};
  for (uint64_t v : probes) {
    const uint32_t idx = HistogramBucketIndex(v);
    ASSERT_LT(idx, kHistogramBuckets) << v;
    EXPECT_LE(HistogramBucketLow(idx), v) << v;
    EXPECT_GE(HistogramBucketHigh(idx), v) << v;
  }
  EXPECT_EQ(HistogramBucketIndex(UINT64_MAX), kHistogramBuckets - 1);
}

TEST(HistogramBucketsTest, BucketsTileTheRangeMonotonically) {
  // Adjacent buckets abut exactly: High(i) + 1 == Low(i + 1), and the
  // index function is monotone across each boundary.
  for (uint32_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    ASSERT_EQ(HistogramBucketHigh(i) + 1, HistogramBucketLow(i + 1)) << i;
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketHigh(i)), i);
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketLow(i + 1)), i + 1);
  }
}

TEST(HistogramBucketsTest, RelativeErrorIsBounded) {
  // Bucket width never exceeds 1/16th of the bucket's lower bound, the
  // <= 6.25% relative-error guarantee the header documents.
  for (uint32_t i = kHistogramSubBuckets; i < kHistogramBuckets; ++i) {
    const uint64_t low = HistogramBucketLow(i);
    const uint64_t width = HistogramBucketHigh(i) - low;
    EXPECT_LE(width, low / kHistogramSubBuckets) << "bucket " << i;
  }
}

TEST(CounterTest, IncrementAndDeltaSum) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(-4);
  EXPECT_EQ(g.Value(), -4);
  g.Add(10);
  EXPECT_EQ(g.Value(), 6);
}

TEST(LatencyHistogramTest, RecordsCountSumAndPercentiles) {
  LatencyHistogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 6u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 2.0);
  // Nearest rank over unit buckets is exact: rank ceil(.5*3)=2 -> 2.
  EXPECT_DOUBLE_EQ(snap.ValueAtPercentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.ValueAtPercentile(50.0), 2.0);
  EXPECT_DOUBLE_EQ(snap.ValueAtPercentile(100.0), 3.0);
  // Out-of-range p clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(snap.ValueAtPercentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.ValueAtPercentile(250.0), 3.0);
}

TEST(LatencyHistogramTest, RecordValueRoundsAndClampsNegatives) {
  LatencyHistogram h;
  h.RecordValue(-3.5);  // clamps to 0
  h.RecordValue(2.4);   // rounds to 2
  h.RecordValue(2.5);   // rounds to 3
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 5u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
}

TEST(HistogramSnapshotTest, EmptySnapshotReportsZero) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.ValueAtPercentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
}

HistogramSnapshot SnapshotOf(std::vector<uint64_t> values) {
  LatencyHistogram h;
  for (uint64_t v : values) h.Record(v);
  return h.Snapshot();
}

TEST(HistogramSnapshotTest, MergeIsAssociativeAndCommutative) {
  const HistogramSnapshot a = SnapshotOf({1, 5, 900});
  const HistogramSnapshot b = SnapshotOf({2, 2, 1u << 20});
  const HistogramSnapshot c;  // default-empty: no buckets vector at all

  HistogramSnapshot ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramSnapshot bc = b;
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);

  HistogramSnapshot ba = b;
  ba.Merge(a);
  HistogramSnapshot ab = a;
  ab.Merge(b);
  EXPECT_EQ(ab.count, ba.count);
  EXPECT_EQ(ab.sum, ba.sum);
  EXPECT_EQ(ab.buckets, ba.buckets);

  // Merging into an empty snapshot adopts the dense bucket vector.
  HistogramSnapshot from_empty;
  from_empty.Merge(a);
  EXPECT_EQ(from_empty.buckets, a.buckets);
  EXPECT_EQ(from_empty.count, a.count);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("requests");
  Counter* c2 = registry.GetCounter("requests");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetCounter("other"), c1);
  EXPECT_EQ(registry.GetGauge("depth"), registry.GetGauge("depth"));
  EXPECT_EQ(registry.GetHistogram("lat"), registry.GetHistogram("lat"));
}

TEST(MetricsRegistryTest, CallbackGaugeTokenSemantics) {
  MetricsRegistry registry;
  const uint64_t old_token =
      registry.SetCallbackGauge("depth", [] { return int64_t{7}; });
  EXPECT_EQ(registry.Snapshot().gauges.at("depth"), 7);

  // Re-registering the name replaces the callback and invalidates the
  // old token...
  registry.SetCallbackGauge("depth", [] { return int64_t{9}; });
  EXPECT_EQ(registry.Snapshot().gauges.at("depth"), 9);

  // ...so removal with the stale token is a no-op (the newer owner's
  // registration survives an older owner's teardown).
  registry.RemoveCallbackGauge("depth", old_token);
  EXPECT_EQ(registry.Snapshot().gauges.at("depth"), 9);
}

TEST(MetricsRegistryTest, RemovedCallbackGaugeDisappears) {
  MetricsRegistry registry;
  const uint64_t token =
      registry.SetCallbackGauge("depth", [] { return int64_t{1}; });
  registry.RemoveCallbackGauge("depth", token);
  EXPECT_EQ(registry.Snapshot().gauges.count("depth"), 0u);
}

TEST(MetricsRegistryTest, ExpositionGoldens) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("requests_total");
  requests->Increment(2);
  requests->Increment();
  registry.GetGauge("queue_depth")->Set(-4);
  registry.SetCallbackGauge("cb_depth", [] { return int64_t{7}; });
  LatencyHistogram* lat = registry.GetHistogram("latency_us");
  lat->Record(1);
  lat->Record(2);
  lat->Record(3);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.ToJson(),
            "{\"counters\":{\"requests_total\":3},"
            "\"gauges\":{\"cb_depth\":7,\"queue_depth\":-4},"
            "\"histograms\":{\"latency_us\":{\"count\":3,\"sum\":6,"
            "\"mean\":2,\"p50\":2,\"p99\":3,\"p999\":3}}}");
  EXPECT_EQ(snap.ToPrometheusText(),
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# TYPE cb_depth gauge\n"
            "cb_depth 7\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth -4\n"
            "# TYPE latency_us summary\n"
            "latency_us{quantile=\"0.5\"} 2\n"
            "latency_us{quantile=\"0.99\"} 3\n"
            "latency_us{quantile=\"0.999\"} 3\n"
            "latency_us_sum 6\n"
            "latency_us_count 3\n");
}

TEST(MetricsRegistryTest, NonIntegralMeanFormatsCompactly) {
  MetricsSnapshot snap;
  HistogramSnapshot h = SnapshotOf({1, 2});
  snap.histograms["lat"] = h;
  EXPECT_NE(snap.ToJson().find("\"mean\":1.5"), std::string::npos);
}

// The TSan certification test: writers hammer the lock-free hot path
// (sharded counter increments, histogram records, gauge stores) while a
// reader snapshots the registry concurrently. Totals are exact once the
// writers have joined.
TEST(MetricsRegistryTest, ConcurrentIncrementAndSnapshot) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits");
  Gauge* gauge = registry.GetGauge("level");
  LatencyHistogram* hist = registry.GetHistogram("lat");
  registry.SetCallbackGauge("cb", [] { return int64_t{5}; });

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = registry.Snapshot();
      // Monotone counter: any concurrent observation is <= the final
      // total.
      EXPECT_LE(snap.counters.at("hits"), kThreads * kPerThread);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Set(static_cast<int64_t>(i));
        hist->Record(i % 128);
      }
      (void)t;
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();

  MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("hits"), kThreads * kPerThread);
  EXPECT_EQ(final_snap.histograms.at("lat").count, kThreads * kPerThread);
  EXPECT_EQ(final_snap.gauges.at("cb"), 5);
}

}  // namespace
}  // namespace obs
}  // namespace dgt
