// Shared helpers for the dgt test suite.

#ifndef DGT_TESTS_TEST_UTIL_H_
#define DGT_TESTS_TEST_UTIL_H_

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/pa_generator.h"
#include "trust/trust_estimator.h"
#include "trust/trust_matrix.h"

#include "gtest/gtest.h"

namespace dgt {
namespace testing_util {

// A small connected PA graph for gossip tests; aborts the test on failure.
inline Graph MakePaGraph(uint32_t n, uint32_t m = 2, uint64_t seed = 42) {
  PaOptions opts;
  opts.num_nodes = n;
  opts.edges_per_node = m;
  opts.seed = seed;
  Result<Graph> g = GeneratePreferentialAttachment(opts);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// Uniform random values in [0,1].
inline std::vector<double> RandomValues(uint32_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.NextDouble();
  return v;
}

inline double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

// Fills `trust` with noisy edge opinions and returns the ground-truth
// quality vector.
inline std::vector<double> FillTrust(const Graph& g, TrustMatrix* trust,
                                     uint64_t seed, double noise = 0.05) {
  Rng rng(seed);
  return PopulateTrustFromQualities(g, noise, rng, trust);
}

}  // namespace testing_util
}  // namespace dgt

#endif  // DGT_TESTS_TEST_UTIL_H_
