#include "reputation/newcomer_policy.h"

#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(NewcomerPolicyTest, OptimisticBeforeAnyArrival) {
  NewcomerPolicyOptions o;
  o.optimistic_initial = 0.3;
  NewcomerPolicy p(o);
  EXPECT_DOUBLE_EQ(p.WhitewashingRate(), 0.0);
  EXPECT_DOUBLE_EQ(p.InitialTrust(), 0.3);
  EXPECT_EQ(p.arrivals(), 0u);
}

TEST(NewcomerPolicyTest, RateTracksArrivals) {
  NewcomerPolicy p({});
  p.RecordArrival(false);
  p.RecordArrival(true);
  p.RecordArrival(true);
  p.RecordArrival(false);
  EXPECT_DOUBLE_EQ(p.WhitewashingRate(), 0.5);
  EXPECT_EQ(p.arrivals(), 4u);
}

TEST(NewcomerPolicyTest, InitialTrustDecaysWithWhitewashing) {
  NewcomerPolicyOptions o;
  o.optimistic_initial = 0.3;
  o.sensitivity = 8.0;
  NewcomerPolicy p(o);
  // Seed with honest arrivals so the rate climbs gradually as
  // whitewashers appear.
  for (int i = 0; i < 10; ++i) p.RecordArrival(false);
  double prev = p.InitialTrust();
  for (int bad = 0; bad < 10; ++bad) {
    p.RecordArrival(true);
    double now = p.InitialTrust();
    EXPECT_LT(now, prev);
    prev = now;
  }
  // Half the window whitewashing -> deep in the conservative regime.
  EXPECT_LT(p.InitialTrust(), 0.1 * o.optimistic_initial);
}

TEST(NewcomerPolicyTest, HonestArrivalsRestoreOptimism) {
  NewcomerPolicyOptions o;
  o.window = 8;
  NewcomerPolicy p(o);
  for (int i = 0; i < 8; ++i) p.RecordArrival(true);
  double bad_era = p.InitialTrust();
  for (int i = 0; i < 8; ++i) p.RecordArrival(false);
  // The sliding window forgot the whitewashing era entirely.
  EXPECT_DOUBLE_EQ(p.WhitewashingRate(), 0.0);
  EXPECT_GT(p.InitialTrust(), bad_era);
  EXPECT_DOUBLE_EQ(p.InitialTrust(), o.optimistic_initial);
}

TEST(NewcomerPolicyTest, WindowIsSliding) {
  NewcomerPolicyOptions o;
  o.window = 4;
  NewcomerPolicy p(o);
  p.RecordArrival(true);
  p.RecordArrival(true);
  p.RecordArrival(false);
  p.RecordArrival(false);
  EXPECT_DOUBLE_EQ(p.WhitewashingRate(), 0.5);
  // Two more honest arrivals push both whitewashers out of the window.
  p.RecordArrival(false);
  p.RecordArrival(false);
  EXPECT_DOUBLE_EQ(p.WhitewashingRate(), 0.0);
}

TEST(NewcomerPolicyTest, ZeroWindowClampedToOne) {
  NewcomerPolicyOptions o;
  o.window = 0;
  NewcomerPolicy p(o);
  p.RecordArrival(true);
  EXPECT_DOUBLE_EQ(p.WhitewashingRate(), 1.0);
  p.RecordArrival(false);
  EXPECT_DOUBLE_EQ(p.WhitewashingRate(), 0.0);
}

TEST(NewcomerPolicyTest, InitialTrustBounded) {
  NewcomerPolicy p({});
  for (int i = 0; i < 100; ++i) {
    p.RecordArrival(i % 3 == 0);
    double v = p.InitialTrust();
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, NewcomerPolicyOptions{}.optimistic_initial);
  }
}

}  // namespace
}  // namespace dgt
