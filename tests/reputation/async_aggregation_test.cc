// GCLR variant 4 over the event-driven engine: the async aggregation
// path must agree with the synchronous sparse path on converged values
// (same seeding, same yhat/denominator post-processing, different gossip
// trajectories) and must stay bit-for-bit thread-count invariant end to
// end, post-processing included.

#include <cmath>

#include "reputation/aggregation.h"

#include "graph/generators.h"
#include "reputation/reference.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

AsyncAggregationOptions AsyncOpts(double xi = 1e-8, uint64_t seed = 3) {
  AsyncAggregationOptions o;
  o.gossip.xi = xi;
  o.gossip.seed = seed;
  o.weights.a = 4.0;
  o.weights.b = 1.0;
  return o;
}

TEST(AggregateGclrVectorAsyncTest, RejectsBadInput) {
  Graph g = MakePaGraph(20);
  TrustMatrix t(19);  // mismatch
  EXPECT_FALSE(AggregateGclrVectorAsync(g, t, AsyncOpts()).ok());
}

TEST(AggregateGclrVectorAsyncTest, AgreesWithSynchronousGclrVector) {
  const uint32_t n = 40;
  Graph g = MakePaGraph(n, 2, 70);
  TrustMatrix t(n);
  FillTrust(g, &t, 71);

  AggregationOptions sync_o;
  sync_o.gossip.xi = 1e-9;
  sync_o.gossip.seed = 3;
  sync_o.weights.a = 4.0;
  sync_o.weights.b = 1.0;
  auto sync = AggregateGclrVector(g, t, sync_o);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  ASSERT_TRUE(sync->stats.converged);

  auto async = AggregateGclrVectorAsync(g, t, AsyncOpts(1e-8));
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  EXPECT_TRUE(async->stats.converged);
  EXPECT_GT(async->stats.gossip_messages, 0u);

  double worst = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      worst = std::max(worst, std::fabs(async->estimates[i][j] -
                                        sync->estimates[i][j]));
    }
  }
  EXPECT_LT(worst, 0.02);
}

TEST(AggregateGclrVectorAsyncTest, MatchesExactGclrPerObserver) {
  const uint32_t n = 40;
  Graph g = MakePaGraph(n, 2, 72);
  TrustMatrix t(n);
  FillTrust(g, &t, 73);

  AsyncAggregationOptions o = AsyncOpts(1e-9);
  auto r = AggregateGclrVectorAsync(g, t, o);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->stats.converged);
  for (NodeId i = 0; i < n; ++i) {
    auto w = WeightTable::Build(t, i, o.weights).value();
    for (NodeId j : {NodeId{2}, NodeId{17}, NodeId{33}}) {
      double truth = ExactGclr(t, g, w, j, DenominatorMode::kOpinators);
      EXPECT_NEAR(r->estimates[i][j], truth, 0.02)
          << "observer " << i << " target " << j;
    }
  }
}

TEST(AggregateGclrVectorAsyncTest, ThreadCountInvariantEndToEnd) {
  const uint32_t n = 28;
  Graph g = MakePaGraph(n, 2, 74);
  TrustMatrix t(n);
  FillTrust(g, &t, 75);

  AsyncAggregationOptions o = AsyncOpts(1e-6);
  o.gossip.num_threads = 1;
  auto base = AggregateGclrVectorAsync(g, t, o);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  for (uint32_t threads : {2u, 4u, 8u}) {
    o.gossip.num_threads = threads;
    auto r = AggregateGclrVectorAsync(g, t, o);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->estimates, base->estimates) << "T=" << threads;
    EXPECT_EQ(r->stats.sim_time, base->stats.sim_time) << "T=" << threads;
    EXPECT_EQ(r->stats.gossip_messages, base->stats.gossip_messages)
        << "T=" << threads;
    EXPECT_EQ(r->stats.control_messages, base->stats.control_messages)
        << "T=" << threads;
    EXPECT_EQ(r->stats.events, base->stats.events) << "T=" << threads;
  }
}

}  // namespace
}  // namespace dgt
