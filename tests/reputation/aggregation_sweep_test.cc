// Parameterized correctness sweeps for the aggregation variants: the
// gossiped GCLR must match the exact centralized formula at every
// observer/target for every combination of weight parameters, denominator
// mode, and push strategy — and the free-riding economics invariants of
// the file-sharing workload must hold.

#include <cmath>
#include <string>
#include <tuple>

#include "p2p/file_sharing_sim.h"
#include "reputation/aggregation.h"
#include "reputation/reference.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

using AggParam = std::tuple<double, double, DenominatorMode, PushStrategy>;

class AggregationSweep : public ::testing::TestWithParam<AggParam> {};

TEST_P(AggregationSweep, GclrVectorMatchesExactEverywhere) {
  auto [a, b, mode, strategy] = GetParam();
  const uint32_t n = 36;
  Graph g = MakePaGraph(n, 2, 90);
  TrustMatrix t(n);
  FillTrust(g, &t, 91);

  AggregationOptions opts;
  opts.gossip.xi = 1e-10;
  opts.gossip.strategy = strategy;
  opts.gossip.seed = 4;
  opts.weights.a = a;
  opts.weights.b = b;
  opts.denominator = mode;

  auto run = AggregateGclrVector(g, t, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(run->stats.converged);

  for (NodeId i = 0; i < n; ++i) {
    auto w = WeightTable::Build(t, i, opts.weights).value();
    for (NodeId j = 0; j < n; ++j) {
      double exact = ExactGclr(t, g, w, j, mode);
      EXPECT_NEAR(run->estimates[i][j], exact, 0.02)
          << "observer " << i << " target " << j << " a=" << a << " b=" << b;
    }
  }
}

std::string AggName(const ::testing::TestParamInfo<AggParam>& info) {
  auto [a, b, mode, strategy] = info.param;
  std::string name = "A";
  name += std::to_string(static_cast<int>(a));
  name += "B";
  name += std::to_string(static_cast<int>(b * 10));
  name += mode == DenominatorMode::kOpinators ? "Opinators" : "AllNodes";
  name += strategy == PushStrategy::kDifferential ? "Diff" : "Unif";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    WeightGrid, AggregationSweep,
    ::testing::Combine(::testing::Values(1.0, 2.0, 8.0),
                       ::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(DenominatorMode::kOpinators,
                                         DenominatorMode::kAllNodes),
                       ::testing::Values(PushStrategy::kDifferential,
                                         PushStrategy::kUniform)),
    AggName);

// Single-target Algorithm 2 must agree with the vector variant's column.
class SingleVsVectorSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(SingleVsVectorSweep, SingleTargetMatchesVectorColumn) {
  const NodeId target = GetParam();
  const uint32_t n = 30;
  Graph g = MakePaGraph(n, 2, 92);
  TrustMatrix t(n);
  FillTrust(g, &t, 93);
  AggregationOptions opts;
  opts.gossip.xi = 1e-10;
  auto vec = AggregateGclrVector(g, t, opts);
  auto single = AggregateGclrSingle(g, t, target, opts);
  ASSERT_TRUE(vec.ok() && single.ok());
  for (NodeId i = 0; i < n; ++i) {
    EXPECT_NEAR(single->estimates[i], vec->estimates[i][target], 0.02)
        << "observer " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, SingleVsVectorSweep,
                         ::testing::Values(0, 3, 11, 29));

// Free-riding economics invariants across population mixes.
class EconomicsSweep : public ::testing::TestWithParam<double> {};

TEST_P(EconomicsSweep, UploadsBalanceDownloadsAndFreeRidersNeverUpload) {
  const double fr_fraction = GetParam();
  const uint32_t n = 50;
  Graph g = MakePaGraph(n, 2, 94);
  Rng rng(95);
  PopulationMix mix;
  mix.free_rider_fraction = fr_fraction;
  mix.min_quality = 0.6;
  auto peers = MakePopulation(n, mix, rng);
  FileSharingOptions o;
  o.num_rounds = 30;
  o.gossip_every = 10;
  o.reputation.aggregation.gossip.xi = 1e-6;
  o.seed = 96;
  auto sim = FileSharingSim::Create(&g, peers, o);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->Run().ok());
  const auto& rep = (*sim)->report();

  // Conservation: every download is somebody's upload.
  uint64_t downloads =
      rep.cooperative.served + rep.free_rider.served + rep.colluder.served;
  uint64_t uploads = rep.cooperative.uploads + rep.free_rider.uploads +
                     rep.colluder.uploads;
  EXPECT_EQ(downloads, uploads);

  // Free riders never upload — their utility is exactly their downloads.
  EXPECT_EQ(rep.free_rider.uploads, 0u);
  EXPECT_EQ(rep.free_rider.NetUtility(),
            static_cast<int64_t>(rep.free_rider.served));

  if (fr_fraction > 0.0) {
    ASSERT_GT(rep.free_rider.requests, 0u);
    // With the reputation system on, cooperative peers out-earn free
    // riders in download success — free riding stops being dominant.
    EXPECT_GT(rep.cooperative.SuccessRate(), rep.free_rider.SuccessRate());
  }
}

INSTANTIATE_TEST_SUITE_P(FreeRiderMixes, EconomicsSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5));

}  // namespace
}  // namespace dgt
