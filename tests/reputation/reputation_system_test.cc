#include <cmath>
#include "reputation/reputation_system.h"

#include "reputation/reference.h"

#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

ReputationSystemOptions Opts() {
  ReputationSystemOptions o;
  o.aggregation.gossip.xi = 1e-8;
  o.feedback_push_delta = 0.05;
  return o;
}

TEST(ReputationSystemTest, BeforeFirstRoundFallsBackToDirectTrust) {
  Graph g = MakePaGraph(20);
  TrustMatrix t(20);
  ASSERT_TRUE(t.Set(0, 1, 0.9).ok());
  ReputationSystem sys(&g, &t, Opts());
  EXPECT_EQ(sys.rounds_completed(), 0u);
  EXPECT_DOUBLE_EQ(sys.Reputation(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(sys.Reputation(1, 0), 0.0);
  EXPECT_TRUE(sys.reputations().empty());
}

TEST(ReputationSystemTest, RunRoundProducesFullMatrix) {
  Graph g = MakePaGraph(30);
  TrustMatrix t(30);
  FillTrust(g, &t, 80);
  ReputationSystem sys(&g, &t, Opts());
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.rounds_completed(), 1u);
  ASSERT_EQ(sys.reputations().size(), 30u);
  for (const auto& row : sys.reputations()) EXPECT_EQ(row.size(), 30u);
  EXPECT_TRUE(sys.last_round_stats().converged);
  EXPECT_GT(sys.last_round_stats().steps, 0u);
}

TEST(ReputationSystemTest, FirstRoundPushesEveryFeedbackOnce) {
  Graph g = MakePaGraph(25);
  TrustMatrix t(25);
  FillTrust(g, &t, 81);
  ReputationSystem sys(&g, &t, Opts());
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.last_round_feedback_pushes(), t.TotalOpinions());
  EXPECT_GT(sys.feedback_push_messages(), 0u);
}

TEST(ReputationSystemTest, DeltaRuleSuppressesUnchangedFeedback) {
  Graph g = MakePaGraph(25);
  TrustMatrix t(25);
  FillTrust(g, &t, 82);
  ReputationSystem sys(&g, &t, Opts());
  ASSERT_TRUE(sys.RunRound().ok());
  uint64_t msgs_after_first = sys.feedback_push_messages();
  // Nothing changed: second round pushes no feedback.
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.last_round_feedback_pushes(), 0u);
  EXPECT_EQ(sys.feedback_push_messages(), msgs_after_first);
}

TEST(ReputationSystemTest, DeltaRuleDetectsLargeChange) {
  Graph g = MakePaGraph(25);
  TrustMatrix t(25);
  FillTrust(g, &t, 83);
  ReputationSystem sys(&g, &t, Opts());
  ASSERT_TRUE(sys.RunRound().ok());
  // Flip one opinion far beyond delta.
  NodeId u = g.Edges().front().first;
  NodeId v = g.Edges().front().second;
  double old = t.Get(u, v);
  ASSERT_TRUE(t.Set(u, v, old > 0.5 ? 0.0 : 1.0).ok());
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.last_round_feedback_pushes(), 1u);
}

TEST(ReputationSystemTest, SmallChangeBelowDeltaNotPushed) {
  Graph g = MakePaGraph(25);
  TrustMatrix t(25);
  ASSERT_TRUE(t.Set(0, 1, 0.50).ok());
  ReputationSystem sys(&g, &t, Opts());
  ASSERT_TRUE(sys.RunRound().ok());
  ASSERT_TRUE(t.Set(0, 1, 0.52).ok());  // |change| = 0.02 < delta = 0.05
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.last_round_feedback_pushes(), 0u);
}

TEST(ReputationSystemTest, ErasedOpinionIsRetractedAndPruned) {
  // Regression: RunRound never pruned last_pushed_ entries whose trust
  // opinion had been erased, so a deleted opinion was silently treated
  // as still-announced forever.
  Graph g = MakePaGraph(25);
  TrustMatrix t(25);
  ASSERT_TRUE(t.Set(0, 1, 0.9).ok());
  ASSERT_TRUE(t.Set(2, 3, 0.4).ok());
  ReputationSystem sys(&g, &t, Opts());
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.last_round_feedback_pushes(), 2u);
  const uint64_t msgs_after_first = sys.feedback_push_messages();

  t.Erase(0, 1);
  ASSERT_TRUE(sys.RunRound().ok());
  // The retraction is announced (one push, one message per neighbour).
  EXPECT_EQ(sys.last_round_feedback_pushes(), 1u);
  EXPECT_EQ(sys.feedback_push_messages(), msgs_after_first + g.Degree(0));

  // Because the stale entry is gone, re-stating the very same value is a
  // fresh announcement — under the bug it was silently suppressed.
  ASSERT_TRUE(t.Set(0, 1, 0.9).ok());
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.last_round_feedback_pushes(), 1u);

  // And a steady state pushes nothing.
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.last_round_feedback_pushes(), 0u);
}

TEST(ReputationSystemTest, ReputationReflectsAggregatedTrust) {
  Graph g = MakePaGraph(30, 2, 84);
  TrustMatrix t(30);
  FillTrust(g, &t, 85, /*noise=*/0.0);
  ReputationSystemOptions o = Opts();
  ReputationSystem sys(&g, &t, o);
  ASSERT_TRUE(sys.RunRound().ok());
  // The round's output must match the exact centralized GCLR (same
  // denominator mode and weights) at every observer/target pair.
  for (NodeId i = 0; i < 30; ++i) {
    auto w = WeightTable::Build(t, i, o.aggregation.weights).value();
    for (NodeId j = 0; j < 30; ++j) {
      double exact = ExactGclr(t, g, w, j, o.aggregation.denominator);
      EXPECT_NEAR(sys.Reputation(i, j), exact, 0.02)
          << "observer " << i << " target " << j;
    }
  }
}

TEST(ReputationSystemTest, RoundsAdvanceSeed) {
  Graph g = MakePaGraph(20);
  TrustMatrix t(20);
  FillTrust(g, &t, 86);
  ReputationSystem sys(&g, &t, Opts());
  ASSERT_TRUE(sys.RunRound().ok());
  auto first = sys.reputations();
  ASSERT_TRUE(sys.RunRound().ok());
  EXPECT_EQ(sys.rounds_completed(), 2u);
  // Same trust, different gossip randomness -> essentially equal values.
  for (NodeId i = 0; i < 20; ++i) {
    for (NodeId j = 0; j < 20; ++j) {
      EXPECT_NEAR(sys.reputations()[i][j], first[i][j], 0.01);
    }
  }
}

}  // namespace
}  // namespace dgt
