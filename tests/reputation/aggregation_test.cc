#include <cmath>
#include "reputation/aggregation.h"

#include "graph/generators.h"
#include "reputation/reference.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

AggregationOptions Opts(double xi = 1e-9, uint64_t seed = 3) {
  AggregationOptions o;
  o.gossip.xi = xi;
  o.gossip.seed = seed;
  o.weights.a = 4.0;
  o.weights.b = 1.0;
  return o;
}

TEST(AggregateGlobalSingleTest, RejectsBadInput) {
  Graph g = MakePaGraph(20);
  TrustMatrix t(19);  // mismatch
  EXPECT_FALSE(AggregateGlobalSingle(g, t, 0, Opts()).ok());
  TrustMatrix t2(20);
  EXPECT_FALSE(AggregateGlobalSingle(g, t2, 25, Opts()).ok());
}

TEST(AggregateGlobalSingleTest, MatchesExactOpinatorMean) {
  Graph g = MakePaGraph(100, 2, 50);
  TrustMatrix t(100);
  FillTrust(g, &t, 51);
  const NodeId target = 7;
  auto r = AggregateGlobalSingle(g, t, target, Opts());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->stats.converged);
  double truth = ExactGlobalMeanOpinators(t, target);
  for (double est : r->estimates) EXPECT_NEAR(est, truth, 0.01);
}

TEST(AggregateGlobalSingleTest, UnratedTargetGivesZero) {
  Graph g = MakePaGraph(30);
  TrustMatrix t(30);  // nobody rated anybody
  auto r = AggregateGlobalSingle(g, t, 3, Opts());
  ASSERT_TRUE(r.ok());
  for (double est : r->estimates) EXPECT_DOUBLE_EQ(est, 0.0);
}

TEST(AggregateGclrSingleTest, MatchesExactGclrPerObserver) {
  Graph g = MakePaGraph(60, 2, 52);
  TrustMatrix t(60);
  FillTrust(g, &t, 53);
  const NodeId target = 11;
  AggregationOptions o = Opts(1e-10);
  auto r = AggregateGclrSingle(g, t, target, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.converged);
  for (NodeId i = 0; i < 60; ++i) {
    auto w = WeightTable::Build(t, i, o.weights).value();
    double truth =
        ExactGclr(t, g, w, target, DenominatorMode::kOpinators);
    EXPECT_NEAR(r->estimates[i], truth, 0.01) << "observer " << i;
  }
}

TEST(AggregateGclrSingleTest, AllNodesDenominatorMode) {
  Graph g = MakePaGraph(60, 2, 54);
  TrustMatrix t(60);
  FillTrust(g, &t, 55);
  const NodeId target = 5;
  AggregationOptions o = Opts(1e-10);
  o.denominator = DenominatorMode::kAllNodes;
  auto r = AggregateGclrSingle(g, t, target, o);
  ASSERT_TRUE(r.ok());
  for (NodeId i = 0; i < 60; ++i) {
    auto w = WeightTable::Build(t, i, o.weights).value();
    double truth = ExactGclr(t, g, w, target, DenominatorMode::kAllNodes);
    EXPECT_NEAR(r->estimates[i], truth, 0.01) << "observer " << i;
  }
}

TEST(AggregateGclrSingleTest, WeightNodeSelection) {
  Graph g = MakePaGraph(40, 2, 56);
  TrustMatrix t(40);
  FillTrust(g, &t, 57);
  AggregationOptions o = Opts(1e-10);
  o.designate_target_as_weight_node = false;
  o.designated_weight_node = 39;
  auto r = AggregateGclrSingle(g, t, 2, o);
  ASSERT_TRUE(r.ok());
  o.designated_weight_node = 99;  // out of range
  EXPECT_FALSE(AggregateGclrSingle(g, t, 2, o).ok());
}

TEST(AggregateGlobalVectorTest, MatchesPerColumnExact) {
  Graph g = MakePaGraph(50, 2, 58);
  TrustMatrix t(50);
  FillTrust(g, &t, 59);
  auto r = AggregateGlobalVector(g, t, Opts(1e-10));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->stats.converged);
  auto truth = ExactGlobalMeanOpinatorsVector(t);
  for (NodeId i = 0; i < 50; ++i) {
    for (NodeId j = 0; j < 50; ++j) {
      EXPECT_NEAR(r->estimates[i][j], truth[j], 5e-3)
          << "observer " << i << " target " << j;
    }
  }
}

TEST(AggregateGclrVectorTest, MatchesSingleTargetRuns) {
  Graph g = MakePaGraph(40, 2, 60);
  TrustMatrix t(40);
  FillTrust(g, &t, 61);
  AggregationOptions o = Opts(1e-10);
  auto vec = AggregateGclrVector(g, t, o);
  ASSERT_TRUE(vec.ok());
  EXPECT_TRUE(vec->stats.converged);
  // Exact references per observer.
  for (NodeId i = 0; i < 40; ++i) {
    auto w = WeightTable::Build(t, i, o.weights).value();
    for (NodeId j = 0; j < 40; ++j) {
      double truth = ExactGclr(t, g, w, j, DenominatorMode::kOpinators);
      EXPECT_NEAR(vec->estimates[i][j], truth, 0.01)
          << "observer " << i << " target " << j;
    }
  }
}

TEST(AggregateGclrVectorTest, EstimatesDifferAcrossObservers) {
  // The whole point of GCLR: different observers hold different values.
  Graph g = MakePaGraph(40, 2, 62);
  TrustMatrix t(40);
  FillTrust(g, &t, 63);
  auto r = AggregateGclrVector(g, t, Opts(1e-9));
  ASSERT_TRUE(r.ok());
  int distinct_pairs = 0;
  for (NodeId j = 0; j < 40; ++j) {
    if (std::fabs(r->estimates[0][j] - r->estimates[1][j]) > 1e-6) {
      ++distinct_pairs;
    }
  }
  EXPECT_GT(distinct_pairs, 0);
}

TEST(AggregateGclrVectorTest, UniformWeightsCollapseToGlobal) {
  // a = 1 -> all weights 1 -> GCLR equals the global opinator mean.
  Graph g = MakePaGraph(40, 2, 64);
  TrustMatrix t(40);
  FillTrust(g, &t, 65);
  AggregationOptions o = Opts(1e-10);
  o.weights.a = 1.0;
  auto r = AggregateGclrVector(g, t, o);
  ASSERT_TRUE(r.ok());
  auto truth = ExactGlobalMeanOpinatorsVector(t);
  for (NodeId i = 0; i < 40; ++i) {
    for (NodeId j = 0; j < 40; ++j) {
      EXPECT_NEAR(r->estimates[i][j], truth[j], 5e-3);
    }
  }
}

// The engine switch must be invisible: the sparse and dense vector
// engines produce identical estimates and run statistics, so small-N
// cross-validation with kDense carries over to large-N kSparse runs.
TEST(AggregationTest, SparseAndDenseEnginesMatchBitForBit) {
  Graph g = MakePaGraph(48, 2, 72);
  TrustMatrix t(48);
  FillTrust(g, &t, 73);
  AggregationOptions sparse = Opts(1e-8);
  sparse.engine = VectorGossipEngine::kSparse;
  AggregationOptions dense = sparse;
  dense.engine = VectorGossipEngine::kDense;

  auto gs = AggregateGlobalVector(g, t, sparse);
  auto gd = AggregateGlobalVector(g, t, dense);
  ASSERT_TRUE(gs.ok() && gd.ok());
  EXPECT_EQ(gs->estimates, gd->estimates);
  EXPECT_EQ(gs->stats.steps, gd->stats.steps);
  EXPECT_EQ(gs->stats.gossip_messages, gd->stats.gossip_messages);
  EXPECT_EQ(gs->stats.control_messages, gd->stats.control_messages);

  auto cs = AggregateGclrVector(g, t, sparse);
  auto cd = AggregateGclrVector(g, t, dense);
  ASSERT_TRUE(cs.ok() && cd.ok());
  EXPECT_EQ(cs->estimates, cd->estimates);
  EXPECT_EQ(cs->stats.steps, cd->stats.steps);
  EXPECT_EQ(cs->stats.gossip_messages, cd->stats.gossip_messages);
  EXPECT_EQ(cs->stats.control_messages, cd->stats.control_messages);
  EXPECT_EQ(cs->stats.mean_messages_per_active_node_step,
            cd->stats.mean_messages_per_active_node_step);
}

TEST(AggregationTest, UniformAndDifferentialShareTheLimit) {
  Graph g = MakePaGraph(80, 2, 66);
  TrustMatrix t(80);
  FillTrust(g, &t, 67);
  AggregationOptions diff = Opts(1e-10);
  AggregationOptions unif = Opts(1e-10);
  unif.gossip.strategy = PushStrategy::kUniform;
  auto a = AggregateGlobalSingle(g, t, 9, diff);
  auto b = AggregateGlobalSingle(g, t, 9, unif);
  ASSERT_TRUE(a.ok() && b.ok());
  for (NodeId i = 0; i < 80; ++i) {
    EXPECT_NEAR(a->estimates[i], b->estimates[i], 5e-3);
  }
}

TEST(AggregationTest, StatsReported) {
  Graph g = MakePaGraph(50, 2, 68);
  TrustMatrix t(50);
  FillTrust(g, &t, 69);
  auto r = AggregateGclrSingle(g, t, 1, Opts(1e-6));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.steps, 0u);
  EXPECT_GT(r->stats.gossip_messages, 0u);
  EXPECT_GT(r->stats.control_messages, 2 * g.num_edges());
  EXPECT_GT(r->stats.MessagesPerNodePerStep(50), 0.0);
}

TEST(AggregationTest, EstimatesStayInPlausibleRange) {
  Graph g = MakePaGraph(60, 2, 70);
  TrustMatrix t(60);
  FillTrust(g, &t, 71);
  auto r = AggregateGclrVector(g, t, Opts(1e-8));
  ASSERT_TRUE(r.ok());
  for (const auto& row : r->estimates) {
    for (double v : row) {
      EXPECT_GE(v, -0.05);
      EXPECT_LE(v, 1.05);
    }
  }
}

}  // namespace
}  // namespace dgt
