// Regression tests for the hash-iteration determinism bug class: any two
// TrustMatrix instances with identical *content* must produce bit-identical
// aggregation results, no matter how their unordered_map rows were built
// (insertion order, churn through inserted-then-erased entries, bucket
// counts). Float accumulation in hash-iteration order violates this —
// addition is not associative, and hash order is a function of insertion
// *history* — which is exactly what tools/dgt_lint.py's hash-order rule
// flags and what the sorted-iteration fixes in reference.cc,
// aggregation.cc, collusion/analysis.cc, eigen_trust.cc and power_trust.cc
// repaired. These tests pin the repairs.

#include <algorithm>
#include <tuple>
#include <vector>

#include "baselines/eigen_trust.h"
#include "baselines/power_trust.h"
#include "collusion/analysis.h"
#include "reputation/aggregation.h"
#include "reputation/reference.h"
#include "test_util.h"
#include "trust/weights.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;

constexpr uint32_t kNodes = 32;

// Deterministic trust content: every graph edge direction gets an opinion
// whose value depends only on (i, j), so both construction paths below
// agree on content exactly.
std::vector<std::tuple<NodeId, NodeId, double>> Opinions(const Graph& g) {
  std::vector<std::tuple<NodeId, NodeId, double>> ops;
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    for (NodeId j : g.Neighbors(i)) {
      // Values with long mantissas so any reassociation of the sums
      // changes the result in the last ulp.
      ops.emplace_back(i, j, 0.1 + 0.8 * ((i * 131 + j * 137) % 97) / 97.0);
    }
  }
  return ops;
}

// Straightforward build: insert opinions first-to-last.
TrustMatrix BuildForward(const std::vector<std::tuple<NodeId, NodeId, double>>&
                             ops) {
  TrustMatrix t(kNodes);
  for (const auto& [i, j, v] : ops) EXPECT_TRUE(t.Set(i, j, v).ok());
  return t;
}

// Same content, adversarial history: insert last-to-first, and churn every
// row through a pile of temporary entries (inserted then erased) so bucket
// counts and node order inside the unordered_maps diverge from the forward
// build as much as the container allows.
TrustMatrix BuildChurned(const std::vector<std::tuple<NodeId, NodeId, double>>&
                             ops) {
  TrustMatrix t(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) {
    for (NodeId j = 0; j < kNodes; ++j) {
      if (i != j) {
        EXPECT_TRUE(t.Set(i, j, 0.5).ok());
      }
    }
  }
  for (NodeId i = 0; i < kNodes; ++i) {
    for (NodeId j = 0; j < kNodes; ++j) {
      if (i != j) t.Erase(i, j);
    }
  }
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    const auto& [i, j, v] = *it;
    EXPECT_TRUE(t.Set(i, j, v).ok());
  }
  return t;
}

// The raw hash-iteration orders of the two builds must actually differ
// somewhere, or every test below would pass vacuously even with
// hash-order accumulation. (Content equality is asserted separately.)
bool AnyRowOrderDiffers(const TrustMatrix& a, const TrustMatrix& b) {
  for (NodeId i = 0; i < kNodes; ++i) {
    std::vector<NodeId> oa, ob;
    for (const auto& [j, v] : a.Row(i)) oa.push_back(j);
    for (const auto& [j, v] : b.Row(i)) ob.push_back(j);
    if (oa != ob) return true;
  }
  return false;
}

struct Fixture {
  Graph graph = MakePaGraph(kNodes, 3, 77);
  std::vector<std::tuple<NodeId, NodeId, double>> ops = Opinions(graph);
  TrustMatrix forward = BuildForward(ops);
  TrustMatrix churned = BuildChurned(ops);
};

TEST(InsertionHistoryTest, HistoriesDivergeButContentMatches) {
  Fixture f;
  EXPECT_TRUE(AnyRowOrderDiffers(f.forward, f.churned))
      << "construction histories produced identical hash orders; the "
         "equivalence tests below would be vacuous";
  for (NodeId i = 0; i < kNodes; ++i) {
    ASSERT_EQ(f.forward.SortedRow(i), f.churned.SortedRow(i)) << "row " << i;
  }
}

TEST(InsertionHistoryTest, WeightTablesBitIdentical) {
  Fixture f;
  WeightParams p;  // defaults a = 4, b = 1
  for (NodeId i = 0; i < kNodes; ++i) {
    auto wa = WeightTable::Build(f.forward, i, p).value();
    auto wb = WeightTable::Build(f.churned, i, p).value();
    EXPECT_EQ(wa.TotalExcessWeight(), wb.TotalExcessWeight()) << "owner " << i;
    ASSERT_EQ(wa.SortedEntries(), wb.SortedEntries()) << "owner " << i;
  }
}

TEST(InsertionHistoryTest, ExactGclrBitIdentical) {
  Fixture f;
  WeightParams p;
  for (NodeId owner = 0; owner < kNodes; ++owner) {
    auto wa = WeightTable::Build(f.forward, owner, p).value();
    auto wb = WeightTable::Build(f.churned, owner, p).value();
    for (NodeId j = 0; j < kNodes; ++j) {
      EXPECT_EQ(
          ExactGclr(f.forward, f.graph, wa, j, DenominatorMode::kOpinators),
          ExactGclr(f.churned, f.graph, wb, j, DenominatorMode::kOpinators))
          << "owner " << owner << " target " << j;
    }
  }
}

TEST(InsertionHistoryTest, GclrAggregationBitIdentical) {
  Fixture f;
  AggregationOptions o;
  o.gossip.xi = 1e-9;
  o.gossip.seed = 3;
  const NodeId target = 5;
  auto ra = AggregateGclrSingle(f.graph, f.forward, target, o);
  auto rb = AggregateGclrSingle(f.graph, f.churned, target, o);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra->estimates, rb->estimates);

  auto va = AggregateGclrVector(f.graph, f.forward, o);
  auto vb = AggregateGclrVector(f.graph, f.churned, o);
  ASSERT_TRUE(va.ok() && vb.ok());
  ASSERT_EQ(va->estimates, vb->estimates);
}

TEST(InsertionHistoryTest, EigenTrustBitIdentical) {
  Fixture f;
  EigenTrustOptions o;
  o.pretrusted = {0, 1};
  auto ra = ComputeEigenTrust(f.forward, o);
  auto rb = ComputeEigenTrust(f.churned, o);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->iterations, rb->iterations);
  ASSERT_EQ(ra->scores, rb->scores);
}

TEST(InsertionHistoryTest, PowerTrustBitIdentical) {
  Fixture f;
  PowerTrustOptions o;
  auto ra = ComputePowerTrust(f.forward, o);
  auto rb = ComputePowerTrust(f.churned, o);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->iterations, rb->iterations);
  ASSERT_EQ(ra->scores, rb->scores);
  EXPECT_EQ(ra->power_nodes, rb->power_nodes);
}

TEST(InsertionHistoryTest, MeasuredWeightedDeltaBitIdentical) {
  Fixture f;
  WeightParams p;
  // A second content set acting as the "colluded" matrix: flip every
  // opinion towards 1.
  auto colluded_ops = f.ops;
  for (auto& [i, j, v] : colluded_ops) v = 1.0 - 0.5 * v;
  TrustMatrix colluded_fwd = BuildForward(colluded_ops);
  TrustMatrix colluded_churn = BuildChurned(colluded_ops);
  for (NodeId owner : {NodeId{0}, NodeId{7}, NodeId{19}}) {
    auto wa = WeightTable::Build(f.forward, owner, p).value();
    auto wb = WeightTable::Build(f.churned, owner, p).value();
    for (NodeId j = 0; j < kNodes; ++j) {
      EXPECT_EQ(MeasuredWeightedDelta(f.forward, colluded_fwd, wa, j),
                MeasuredWeightedDelta(f.churned, colluded_churn, wb, j))
          << "owner " << owner << " target " << j;
    }
  }
}

}  // namespace
}  // namespace dgt
