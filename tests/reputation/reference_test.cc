#include <cmath>
#include "reputation/reference.h"

#include "graph/generators.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

// 4-node path 0-1-2-3 with hand-set trust entries.
struct Fixture {
  Graph graph;
  TrustMatrix trust;

  Fixture() : graph(4), trust(4) {
    EXPECT_TRUE(graph.AddEdge(0, 1).ok());
    EXPECT_TRUE(graph.AddEdge(1, 2).ok());
    EXPECT_TRUE(graph.AddEdge(2, 3).ok());
    EXPECT_TRUE(trust.Set(0, 1, 0.8).ok());
    EXPECT_TRUE(trust.Set(2, 1, 0.4).ok());
    EXPECT_TRUE(trust.Set(3, 1, 0.6).ok());
    EXPECT_TRUE(trust.Set(1, 2, 0.5).ok());
  }
};

TEST(ReferenceTest, GlobalMeanAll) {
  Fixture f;
  // Column 1 sum = 1.8 over N = 4.
  EXPECT_DOUBLE_EQ(ExactGlobalMeanAll(f.trust, 1), 0.45);
  EXPECT_DOUBLE_EQ(ExactGlobalMeanAll(f.trust, 0), 0.0);
}

TEST(ReferenceTest, GlobalMeanOpinators) {
  Fixture f;
  // Column 1: three opinators, mean 0.6.
  EXPECT_DOUBLE_EQ(ExactGlobalMeanOpinators(f.trust, 1), 0.6);
  // Nobody rated node 0.
  EXPECT_DOUBLE_EQ(ExactGlobalMeanOpinators(f.trust, 0), 0.0);
}

TEST(ReferenceTest, VectorFormsMatchScalar) {
  Fixture f;
  auto all = ExactGlobalMeanAllVector(f.trust);
  auto opi = ExactGlobalMeanOpinatorsVector(f.trust);
  ASSERT_EQ(all.size(), 4u);
  for (NodeId j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(all[j], ExactGlobalMeanAll(f.trust, j));
    EXPECT_DOUBLE_EQ(opi[j], ExactGlobalMeanOpinators(f.trust, j));
  }
}

TEST(ReferenceTest, GclrWithUnitWeightsDegeneratesToGlobal) {
  // eq. (5) with all weights 1 degenerates to eq. (1); with a = 1 every
  // weight is exactly 1.
  Fixture f;
  WeightParams p;
  p.a = 1.0;
  auto w = WeightTable::Build(f.trust, 0, p).value();
  EXPECT_DOUBLE_EQ(
      ExactGclr(f.trust, f.graph, w, 1, DenominatorMode::kAllNodes),
      ExactGlobalMeanAll(f.trust, 1));
  EXPECT_DOUBLE_EQ(
      ExactGclr(f.trust, f.graph, w, 1, DenominatorMode::kOpinators),
      ExactGlobalMeanOpinators(f.trust, 1));
}

TEST(ReferenceTest, GclrHandComputed) {
  Fixture f;
  WeightParams p;
  p.a = 4.0;
  p.b = 1.0;
  // Observer 2 has one opinion: t_21 = 0.4 -> w_21 = 4^0.4.
  auto w = WeightTable::Build(f.trust, 2, p).value();
  double w21 = std::pow(4.0, 0.4);
  // Observer 2's neighbours are {1, 3}; only neighbour 1 has weight > 1
  // (w for 3 is 1, no opinion). Numerator excess: (w21-1)*t_13? No:
  // neighbours k of observer 2 are 1 and 3; (w_2k - 1) * t_k1:
  //   k=1: (w21-1) * t_11 = (w21-1) * 0 = 0 (no self-trust)
  //   k=3: (1-1) * t_31 = 0
  // So GCLR(2,1) = colsum / (excess + N) with excess = w21 - 1.
  double expected =
      1.8 / ((w21 - 1.0) + 4.0);
  EXPECT_DOUBLE_EQ(
      ExactGclr(f.trust, f.graph, w, 1, DenominatorMode::kAllNodes),
      expected);
}

TEST(ReferenceTest, GclrNeighborOpinionBoostsEstimate) {
  // Observer 0 trusts neighbour 1 highly; node 1 rates node 2 with 0.5,
  // which is above the unweighted mean of column 2 -> weighting must pull
  // the estimate up versus the unweighted one... compute exactly.
  Fixture f;
  WeightParams p;
  p.a = 4.0;
  p.b = 1.0;
  auto w = WeightTable::Build(f.trust, 0, p).value();
  double w01 = std::pow(4.0, 0.8);
  // Column 2: only t_12 = 0.5. Observer 0's neighbour set = {1}.
  double expected_all =
      ((w01 - 1.0) * 0.5 + 0.5) / ((w01 - 1.0) + 4.0);
  EXPECT_DOUBLE_EQ(
      ExactGclr(f.trust, f.graph, w, 2, DenominatorMode::kAllNodes),
      expected_all);
  double expected_opi = ((w01 - 1.0) * 0.5 + 0.5) / ((w01 - 1.0) + 1.0);
  EXPECT_DOUBLE_EQ(
      ExactGclr(f.trust, f.graph, w, 2, DenominatorMode::kOpinators),
      expected_opi);
  // Unweighted mean over all nodes is 0.125; the weighted estimate with a
  // trusted direct witness reporting 0.5 must exceed it.
  EXPECT_GT(expected_all, ExactGlobalMeanAll(f.trust, 2));
}

TEST(ReferenceTest, GclrNoInformationIsZero) {
  Fixture f;
  WeightParams p;
  auto w = WeightTable::Build(f.trust, 0, p).value();
  // Nobody has an opinion about node 0; with kOpinators the denominator
  // can still be positive via neighbour excess weight, but the numerator
  // is 0 -> estimate 0.
  EXPECT_DOUBLE_EQ(
      ExactGclr(f.trust, f.graph, w, 0, DenominatorMode::kOpinators), 0.0);
}

TEST(ReferenceTest, GclrVectorMatchesScalar) {
  Fixture f;
  WeightParams p;
  p.a = 2.0;
  auto w = WeightTable::Build(f.trust, 1, p).value();
  auto vec = ExactGclrVector(f.trust, f.graph, w, DenominatorMode::kAllNodes);
  ASSERT_EQ(vec.size(), 4u);
  for (NodeId j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(
        vec[j], ExactGclr(f.trust, f.graph, w, j, DenominatorMode::kAllNodes));
  }
}

TEST(ReferenceTest, EmptyMatrixIsAllZero) {
  TrustMatrix t(3);
  EXPECT_DOUBLE_EQ(ExactGlobalMeanAll(t, 0), 0.0);
  EXPECT_DOUBLE_EQ(ExactGlobalMeanOpinators(t, 0), 0.0);
}

}  // namespace
}  // namespace dgt
