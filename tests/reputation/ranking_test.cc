#include "reputation/ranking.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(TopKTest, OrdersDescending) {
  std::vector<double> s = {0.1, 0.9, 0.5, 0.7};
  auto top = TopK(s, 3);
  EXPECT_EQ(top, (std::vector<NodeId>{1, 3, 2}));
}

TEST(TopKTest, KClampedToSize) {
  std::vector<double> s = {0.3, 0.2};
  auto top = TopK(s, 10);
  EXPECT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
}

TEST(TopKTest, TiesBrokenByLowerId) {
  std::vector<double> s = {0.5, 0.5, 0.5};
  auto top = TopK(s, 2);
  EXPECT_EQ(top, (std::vector<NodeId>{0, 1}));
}

TEST(TopKTest, ZeroKIsEmpty) {
  std::vector<double> s = {1.0};
  EXPECT_TRUE(TopK(s, 0).empty());
}

TEST(PrecisionAtKTest, RejectsBadInput) {
  EXPECT_FALSE(PrecisionAtK({}, {}, 1).ok());
  EXPECT_FALSE(PrecisionAtK({1.0}, {1.0, 2.0}, 1).ok());
  EXPECT_FALSE(PrecisionAtK({1.0}, {1.0}, 0).ok());
}

TEST(PrecisionAtKTest, PerfectAndDisjoint) {
  std::vector<double> truth = {0.9, 0.8, 0.1, 0.2};
  auto perfect = PrecisionAtK(truth, truth, 2);
  ASSERT_TRUE(perfect.ok());
  EXPECT_DOUBLE_EQ(perfect.value(), 1.0);
  std::vector<double> inverted = {0.1, 0.2, 0.9, 0.8};
  auto none = PrecisionAtK(inverted, truth, 2);
  ASSERT_TRUE(none.ok());
  EXPECT_DOUBLE_EQ(none.value(), 0.0);
}

TEST(PrecisionAtKTest, PartialOverlap) {
  std::vector<double> truth = {0.9, 0.8, 0.7, 0.1};  // top2 = {0,1}
  std::vector<double> est = {0.9, 0.1, 0.8, 0.2};    // top2 = {0,2}
  auto p = PrecisionAtK(est, truth, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.5);
}

TEST(PrecisionAtKTest, ScaleInvariant) {
  // Precision depends only on the ordering, not the scale.
  std::vector<double> truth = {0.9, 0.5, 0.3, 0.8};
  std::vector<double> scaled;
  for (double v : truth) scaled.push_back(v * 0.01 + 5.0);
  auto p = PrecisionAtK(scaled, truth, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 1.0);
}

TEST(KendallTauTest, RejectsBadInput) {
  EXPECT_FALSE(KendallTau({1.0}, {1.0}).ok());
  EXPECT_FALSE(KendallTau({1.0, 2.0}, {1.0}).ok());
}

TEST(KendallTauTest, IdenticalOrderIsOne) {
  std::vector<double> a = {0.1, 0.4, 0.7, 0.9};
  auto tau = KendallTau(a, a);
  ASSERT_TRUE(tau.ok());
  EXPECT_DOUBLE_EQ(tau.value(), 1.0);
}

TEST(KendallTauTest, ReversedOrderIsMinusOne) {
  std::vector<double> a = {0.1, 0.4, 0.7, 0.9};
  std::vector<double> b = {0.9, 0.7, 0.4, 0.1};
  auto tau = KendallTau(a, b);
  ASSERT_TRUE(tau.ok());
  EXPECT_DOUBLE_EQ(tau.value(), -1.0);
}

TEST(KendallTauTest, TiesExcluded) {
  // One tied pair in a: 3 pairs total, 2 concordant, 1 neither.
  std::vector<double> a = {0.5, 0.5, 1.0};
  std::vector<double> b = {0.1, 0.2, 0.9};
  auto tau = KendallTau(a, b);
  ASSERT_TRUE(tau.ok());
  EXPECT_DOUBLE_EQ(tau.value(), 2.0 / 3.0);
}

TEST(KendallTauTest, NoisyMonotoneIsHigh) {
  Rng rng(9);
  std::vector<double> truth(100), noisy(100);
  for (size_t i = 0; i < 100; ++i) {
    truth[i] = rng.NextDouble();
    noisy[i] = truth[i] + rng.NextDouble(-0.02, 0.02);
  }
  auto tau = KendallTau(noisy, truth);
  ASSERT_TRUE(tau.ok());
  EXPECT_GT(tau.value(), 0.9);
}

TEST(KendallTauTest, IndependentIsNearZero) {
  Rng rng(11);
  std::vector<double> a(200), b(200);
  for (size_t i = 0; i < 200; ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  auto tau = KendallTau(a, b);
  ASSERT_TRUE(tau.ok());
  EXPECT_NEAR(tau.value(), 0.0, 0.1);
}

}  // namespace
}  // namespace dgt
