// Invariants of the event-driven engine's vector/sparse state policies:
// mass conservation including in-flight shares, dense-vs-sparse policy
// agreement (bit-for-bit: both walk columns ascending with identical
// accumulation order), and tolerance-bounded convergence-value agreement
// between the asynchronous engine and the synchronous sparse engine on
// the same trust-shaped initial state.

#include <cmath>
#include <limits>
#include <vector>

#include "gossip/sparse_vector_engine.h"
#include "net/async_gossip.h"
#include "net/gossip_state.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;

// GCLR-shaped initial state: sparse opinions with a count channel and a
// one-hot diagonal gossip weight.
std::vector<SparseVectorRow> MakeGclrInit(uint32_t n, double density,
                                          uint64_t seed) {
  std::vector<SparseVectorRow> init(n);
  Rng rng(seed);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      double y = 0.0, g = 0.0, c = 0.0;
      if (i == j) g = 1.0;
      if (i != j && rng.NextBernoulli(density)) {
        y = rng.NextDouble();
        c = 1.0;
      }
      if (y == 0.0 && g == 0.0 && c == 0.0) continue;
      init[i].cols.push_back(j);
      init[i].y.push_back(y);
      init[i].g.push_back(g);
      init[i].c.push_back(c);
    }
  }
  return init;
}

std::vector<double> ColumnSums(const std::vector<SparseVectorRow>& rows,
                               uint32_t n) {
  std::vector<double> sums(n, 0.0);
  for (const SparseVectorRow& row : rows) {
    for (size_t k = 0; k < row.cols.size(); ++k) {
      sums[row.cols[k]] += row.y[k];
    }
  }
  return sums;
}

TEST(AsyncSparsePolicy, MassConservedPerColumnIncludingLossAndChurnOfFlight) {
  const uint32_t n = 32;
  Graph g = MakePaGraph(n, 2, 61);
  auto init = MakeGclrInit(n, 0.3, 62);
  std::vector<double> y_before = ColumnSums(init, n);
  std::vector<double> g_before(n, 0.0), c_before(n, 0.0);
  for (const SparseVectorRow& row : init) {
    for (size_t k = 0; k < row.cols.size(); ++k) {
      g_before[row.cols[k]] += row.g[k];
      c_before[row.cols[k]] += row.c[k];
    }
  }

  AsyncGossipOptions o;
  o.xi = 1e-4;
  o.seed = 9;
  o.packet_loss_prob = 0.15;  // lost shares must bounce, not vanish
  o.num_threads = 2;
  AsyncSparsePushSum engine(&g, o);
  auto r = engine.Run(init, /*use_count=*/true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->stats.converged);

  // After the run every share has been drained back into node-resident
  // rows, so per-column sums over all nodes are conserved exactly (up to
  // float accumulation).
  std::vector<double> y_after = ColumnSums(r->rows, n);
  std::vector<double> g_after(n, 0.0), c_after(n, 0.0);
  for (const SparseVectorRow& row : r->rows) {
    for (size_t k = 0; k < row.cols.size(); ++k) {
      g_after[row.cols[k]] += row.g[k];
      c_after[row.cols[k]] += row.c[k];
    }
  }
  for (uint32_t j = 0; j < n; ++j) {
    EXPECT_NEAR(y_after[j], y_before[j], 1e-9) << "column " << j;
    EXPECT_NEAR(g_after[j], g_before[j], 1e-9) << "column " << j;
    EXPECT_NEAR(c_after[j], c_before[j], 1e-9) << "column " << j;
  }
}

TEST(AsyncSparsePolicy, DenseAndSparsePoliciesBitForBitAgree) {
  // Both policies split, absorb, and snapshot column-by-column in
  // ascending order with the same accumulation order, so the sparse run
  // densified must equal the dense run exactly — the event-driven
  // analogue of the synchronous SparseDenseEquivalence sweep.
  const uint32_t n = 18;
  Graph g = MakePaGraph(n, 2, 63);
  auto sparse_init = MakeGclrInit(n, 0.25, 64);
  std::vector<std::vector<double>> y0(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> g0(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> c0(n, std::vector<double>(n, 0.0));
  for (uint32_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < sparse_init[i].cols.size(); ++k) {
      y0[i][sparse_init[i].cols[k]] = sparse_init[i].y[k];
      g0[i][sparse_init[i].cols[k]] = sparse_init[i].g[k];
      c0[i][sparse_init[i].cols[k]] = sparse_init[i].c[k];
    }
  }

  AsyncGossipOptions o;
  o.xi = 1e-4;
  o.seed = 21;
  o.num_threads = 4;
  AsyncVectorPushSum dense(&g, o);
  auto dr = dense.Run(y0, g0, c0);
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  AsyncSparsePushSum sparse(&g, o);
  auto sr = sparse.Run(sparse_init, /*use_count=*/true);
  ASSERT_TRUE(sr.ok()) << sr.status().ToString();

  EXPECT_EQ(sr->stats.sim_time, dr->stats.sim_time);
  EXPECT_EQ(sr->stats.gossip_messages, dr->stats.gossip_messages);
  EXPECT_EQ(sr->stats.control_messages, dr->stats.control_messages);
  EXPECT_EQ(sr->stats.events, dr->stats.events);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<double> dense_y(n, 0.0), dense_g(n, 0.0), dense_c(n, 0.0);
    for (size_t k = 0; k < sr->rows[i].cols.size(); ++k) {
      dense_y[sr->rows[i].cols[k]] = sr->rows[i].y[k];
      dense_g[sr->rows[i].cols[k]] = sr->rows[i].g[k];
      dense_c[sr->rows[i].cols[k]] = sr->rows[i].c[k];
    }
    EXPECT_EQ(dense_y, dr->y[i]) << "node " << i;
    EXPECT_EQ(dense_g, dr->g[i]) << "node " << i;
    EXPECT_EQ(dense_c, dr->c[i]) << "node " << i;
  }
}

TEST(AsyncSparsePolicy, AgreesWithSynchronousEngineOnConvergedValues) {
  // Same trust-shaped state through the synchronous sparse engine and the
  // event-driven engine: different trajectories (rounds vs timers), same
  // fixed point — each column's estimate converges to its conserved
  // column-mass ratio, so values agree within a tolerance set by xi.
  const uint32_t n = 32;
  Graph g = MakePaGraph(n, 2, 65);
  auto init = MakeGclrInit(n, 0.3, 66);
  std::vector<double> column_mass = ColumnSums(init, n);

  GossipOptions sync_o;
  sync_o.xi = 1e-7;
  sync_o.seed = 31;
  sync_o.max_steps = 200000;
  SparseVectorPushSum sync_engine(&g, sync_o);
  auto sync = sync_engine.Run(init, /*use_count=*/true);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  ASSERT_TRUE(sync->converged);

  AsyncGossipOptions async_o;
  async_o.xi = 1e-7;
  async_o.seed = 31;
  async_o.num_threads = 2;
  AsyncSparsePushSum async_engine(&g, async_o);
  auto async = async_engine.Run(init, /*use_count=*/true);
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  ASSERT_TRUE(async->stats.converged);

  // Columns with weight: ratio y/g approximates the column's conserved
  // mass (one-hot diagonal weight, so the denominator mass is 1).
  double worst_vs_sync = 0.0, worst_vs_truth = 0.0;
  uint32_t compared = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const SparseVectorRow& row = async->rows[i];
    // Densify the sync row's estimates for lookup.
    std::vector<double> sync_est(n,
                                 std::numeric_limits<double>::quiet_NaN());
    for (size_t k = 0; k < sync->rows[i].cols.size(); ++k) {
      sync_est[sync->rows[i].cols[k]] = sync->rows[i].estimates[k];
    }
    for (size_t k = 0; k < row.cols.size(); ++k) {
      if (row.g[k] == 0.0) continue;
      double est = row.y[k] / row.g[k];
      worst_vs_truth = std::max(
          worst_vs_truth, std::fabs(est - column_mass[row.cols[k]]));
      if (!std::isnan(sync_est[row.cols[k]])) {
        worst_vs_sync =
            std::max(worst_vs_sync, std::fabs(est - sync_est[row.cols[k]]));
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, n);  // the comparison actually covered estimates
  EXPECT_LT(worst_vs_truth, 5e-3);
  EXPECT_LT(worst_vs_sync, 5e-3);
}

}  // namespace
}  // namespace dgt
