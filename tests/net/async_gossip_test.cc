#include <cmath>
#include "net/async_gossip.h"

#include <numeric>

#include "graph/generators.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;
using testing_util::Mean;
using testing_util::RandomValues;

AsyncGossipOptions Opts(double xi = 1e-6, uint64_t seed = 3) {
  AsyncGossipOptions o;
  o.xi = xi;
  o.seed = seed;
  o.max_time = 50000.0;
  return o;
}

TEST(AsyncGossipTest, RejectsBadInput) {
  Graph g = MakePaGraph(20);
  AsyncPushSum engine(&g, Opts());
  EXPECT_FALSE(engine.Run({1.0}, std::vector<double>(20, 1.0)).ok());
  std::vector<double> y(20, 1.0), w(20, 1.0);
  w[0] = -1.0;
  EXPECT_FALSE(engine.Run(y, w).ok());
  AsyncGossipOptions bad = Opts();
  bad.xi = 0.0;
  EXPECT_FALSE(AsyncPushSum(&g, bad).Run(y, std::vector<double>(20, 1.0))
                   .ok());
  bad = Opts();
  bad.push_period = 0.0;
  EXPECT_FALSE(AsyncPushSum(&g, bad).Run(y, std::vector<double>(20, 1.0))
                   .ok());
  bad = Opts();
  bad.period_jitter = 1.0;
  EXPECT_FALSE(AsyncPushSum(&g, bad).Run(y, std::vector<double>(20, 1.0))
                   .ok());
}

TEST(AsyncGossipTest, ConvergesToAverage) {
  Graph g = MakePaGraph(100, 2, 21);
  auto y0 = RandomValues(100, 5);
  std::vector<double> g0(100, 1.0);
  AsyncPushSum engine(&g, Opts(1e-7));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = Mean(y0);
  double mean_err = 0;
  for (double v : r->ratios) mean_err += std::fabs(v - truth);
  EXPECT_LT(mean_err / 100, 5e-3);
}

TEST(AsyncGossipTest, MassConservedIncludingInFlight) {
  // After the run drains the event queue, all mass is node-resident again
  // and must sum to the initial mass exactly.
  Graph g = MakePaGraph(80, 2, 22);
  auto y0 = RandomValues(80, 6);
  std::vector<double> g0(80, 1.0);
  AsyncPushSum engine(&g, Opts(1e-6));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  double sum_g = std::accumulate(r->weights.begin(), r->weights.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
  EXPECT_NEAR(sum_g, 80.0, 1e-9);
}

TEST(AsyncGossipTest, MassConservedUnderLoss) {
  Graph g = MakePaGraph(60, 2, 23);
  auto y0 = RandomValues(60, 7);
  std::vector<double> g0(60, 1.0);
  AsyncGossipOptions o = Opts(1e-6);
  o.packet_loss_prob = 0.2;
  AsyncPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
}

TEST(AsyncGossipTest, DeterministicPerSeed) {
  Graph g = MakePaGraph(50, 2, 24);
  auto y0 = RandomValues(50, 8);
  std::vector<double> g0(50, 1.0);
  auto a = AsyncPushSum(&g, Opts(1e-6, 9)).Run(y0, g0);
  auto b = AsyncPushSum(&g, Opts(1e-6, 9)).Run(y0, g0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ratios, b->ratios);
  EXPECT_EQ(a->gossip_messages, b->gossip_messages);
  EXPECT_DOUBLE_EQ(a->sim_time, b->sim_time);
}

TEST(AsyncGossipTest, TimeCapReported) {
  Graph g = MakePaGraph(200, 2, 25);
  auto y0 = RandomValues(200, 10);
  std::vector<double> g0(200, 1.0);
  AsyncGossipOptions o = Opts(1e-12);
  o.max_time = 3.0;  // a handful of firings only
  AsyncPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->converged);
}

TEST(AsyncGossipTest, SimTimeScalesWithPushPeriod) {
  Graph g = MakePaGraph(60, 2, 26);
  auto y0 = RandomValues(60, 11);
  std::vector<double> g0(60, 1.0);
  AsyncGossipOptions slow = Opts(1e-5);
  slow.push_period = 2.0;
  AsyncGossipOptions fast = Opts(1e-5);
  fast.push_period = 0.5;
  auto rs = AsyncPushSum(&g, slow).Run(y0, g0);
  auto rf = AsyncPushSum(&g, fast).Run(y0, g0);
  ASSERT_TRUE(rs.ok() && rf.ok());
  ASSERT_TRUE(rs->converged && rf->converged);
  EXPECT_GT(rs->sim_time, rf->sim_time);
}

TEST(AsyncGossipTest, FiringsComparableToSyncSteps) {
  // The asynchronous run should need the same order of firings per node
  // as the synchronous engine needs steps.
  Graph g = MakePaGraph(100, 2, 27);
  auto y0 = RandomValues(100, 12);
  std::vector<double> g0(100, 1.0);
  auto r = AsyncPushSum(&g, Opts(1e-6)).Run(y0, g0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  EXPECT_GT(r->max_node_firings, 10u);
  EXPECT_LT(r->max_node_firings, 2000u);
}

TEST(AsyncGossipTest, IsolatedNodesConvergeImmediately) {
  Graph g(4);
  std::vector<double> y0(4, 0.5), g0(4, 1.0);
  AsyncPushSum engine(&g, Opts());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_DOUBLE_EQ(r->sim_time, 0.0);
  for (double v : r->ratios) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(AsyncGossipTest, UniformStrategySupported) {
  Graph g = MakePaGraph(60, 2, 28);
  auto y0 = RandomValues(60, 13);
  std::vector<double> g0(60, 1.0);
  AsyncGossipOptions o = Opts(1e-6);
  o.strategy = PushStrategy::kUniform;
  auto r = AsyncPushSum(&g, o).Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = Mean(y0);
  double mean_err = 0;
  for (double v : r->ratios) mean_err += std::fabs(v - truth);
  EXPECT_LT(mean_err / 60, 5e-3);
}

}  // namespace
}  // namespace dgt
