#include <cmath>
#include "net/async_gossip.h"

#include <numeric>

#include "graph/generators.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;
using testing_util::Mean;
using testing_util::RandomValues;

AsyncGossipOptions Opts(double xi = 1e-6, uint64_t seed = 3) {
  AsyncGossipOptions o;
  o.xi = xi;
  o.seed = seed;
  o.max_time = 50000.0;
  return o;
}

TEST(AsyncGossipTest, RejectsBadInput) {
  Graph g = MakePaGraph(20);
  AsyncPushSum engine(&g, Opts());
  EXPECT_FALSE(engine.Run({1.0}, std::vector<double>(20, 1.0)).ok());
  std::vector<double> y(20, 1.0), w(20, 1.0);
  w[0] = -1.0;
  EXPECT_FALSE(engine.Run(y, w).ok());
  AsyncGossipOptions bad = Opts();
  bad.xi = 0.0;
  EXPECT_FALSE(AsyncPushSum(&g, bad).Run(y, std::vector<double>(20, 1.0))
                   .ok());
  bad = Opts();
  bad.push_period = 0.0;
  EXPECT_FALSE(AsyncPushSum(&g, bad).Run(y, std::vector<double>(20, 1.0))
                   .ok());
  bad = Opts();
  bad.period_jitter = 1.0;
  EXPECT_FALSE(AsyncPushSum(&g, bad).Run(y, std::vector<double>(20, 1.0))
                   .ok());
}

TEST(AsyncGossipTest, ConvergesToAverage) {
  Graph g = MakePaGraph(100, 2, 21);
  auto y0 = RandomValues(100, 5);
  std::vector<double> g0(100, 1.0);
  AsyncPushSum engine(&g, Opts(1e-7));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = Mean(y0);
  double mean_err = 0;
  for (double v : r->ratios) mean_err += std::fabs(v - truth);
  EXPECT_LT(mean_err / 100, 5e-3);
}

TEST(AsyncGossipTest, MassConservedIncludingInFlight) {
  // After the run drains the event queue, all mass is node-resident again
  // and must sum to the initial mass exactly.
  Graph g = MakePaGraph(80, 2, 22);
  auto y0 = RandomValues(80, 6);
  std::vector<double> g0(80, 1.0);
  AsyncPushSum engine(&g, Opts(1e-6));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  double sum_g = std::accumulate(r->weights.begin(), r->weights.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
  EXPECT_NEAR(sum_g, 80.0, 1e-9);
}

TEST(AsyncGossipTest, MassConservedUnderLoss) {
  Graph g = MakePaGraph(60, 2, 23);
  auto y0 = RandomValues(60, 7);
  std::vector<double> g0(60, 1.0);
  AsyncGossipOptions o = Opts(1e-6);
  o.packet_loss_prob = 0.2;
  AsyncPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
}

TEST(AsyncGossipTest, DeterministicPerSeed) {
  Graph g = MakePaGraph(50, 2, 24);
  auto y0 = RandomValues(50, 8);
  std::vector<double> g0(50, 1.0);
  auto a = AsyncPushSum(&g, Opts(1e-6, 9)).Run(y0, g0);
  auto b = AsyncPushSum(&g, Opts(1e-6, 9)).Run(y0, g0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ratios, b->ratios);
  EXPECT_EQ(a->gossip_messages, b->gossip_messages);
  EXPECT_DOUBLE_EQ(a->sim_time, b->sim_time);
}

TEST(AsyncGossipTest, TimeCapClampsSimTimeAndConservesMass) {
  // Regression: the run loops used to check the cap only *before*
  // RunNext(), so the first event past it still executed (sim_time could
  // exceed max_time) and the drain loop dropped every delivery scheduled
  // past the cap (in-flight mass vanished from the reported totals).
  Graph g = MakePaGraph(120, 2, 31);
  auto y0 = RandomValues(120, 14);
  std::vector<double> g0(120, 1.0);
  AsyncGossipOptions o = Opts(1e-12, 32);
  o.convergence_rounds = 1000;  // cannot converge: the cap must bind
  o.max_time = 2.6;
  auto r = AsyncPushSum(&g, o).Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->converged);
  EXPECT_LE(r->sim_time, o.max_time);
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  double sum_g = std::accumulate(r->weights.begin(), r->weights.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
  EXPECT_NEAR(sum_g, 120.0, 1e-9);
}

TEST(AsyncGossipTest, StopsOnAnnouncementArrivalNotNextFiring) {
  // Two nodes, constant link latency L (no access/backbone/jitter
  // randomness), no period jitter: every firing of node i happens at
  // t_i + k (t_i = its random start offset), and every convergence
  // announcement arrives at a firing time + L. The later-converging node
  // stops at its own firing; the other must stop when that announcement
  // *arrives* — so the reported stop time is (some firing) + L, never a
  // grid point. Before the fix the receiver waited for its next firing,
  // putting sim_time back on the firing grid (and one period late).
  Graph g(2);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto run = [&](double backbone, uint64_t seed) {
    AsyncGossipOptions o;
    o.seed = seed;
    o.xi = 1e-4;
    o.push_period = 1.0;
    o.period_jitter = 0.0;
    o.max_time = 10000.0;
    o.link.access_latency_min = 0.02;
    o.link.access_latency_max = 0.02;
    o.link.backbone_latency = backbone;
    o.link.jitter = 0.0;
    return AsyncPushSum(&g, o).Run({0.2, 0.8}, {1.0, 1.0});
  };
  const uint64_t seed = 5;
  const double latency = 0.02 + 0.10 + 0.02;
  auto r = run(0.10, seed);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  // The start offset of node i is the first draw of its counter-based
  // per-event stream (seed, node i, counter 0).
  Rng probe(seed);
  const double t0 = probe.StreamAt(0, 0).NextDouble(0.0, 1.0);
  const double t1 = probe.StreamAt(1, 0).NextDouble(0.0, 1.0);
  auto on_grid_of = [&](double time, double offset) {
    const double frac = std::fmod(time - offset, 1.0);
    return std::min(frac, 1.0 - frac) < 1e-9;
  };
  // Stop time sits one latency after a firing, not on a firing.
  EXPECT_TRUE(on_grid_of(r->sim_time - latency, t0) ||
              on_grid_of(r->sim_time - latency, t1))
      << "sim_time " << r->sim_time << " is not firing + latency";
  EXPECT_FALSE(on_grid_of(r->sim_time, t0) || on_grid_of(r->sim_time, t1))
      << "sim_time " << r->sim_time << " sits on the firing grid";
  // Cross-check: nudging the constant latency shifts the stop time by
  // exactly the nudge (the announcement arrival moved with it), while
  // the protocol trajectory — message counts included — is unchanged.
  auto r2 = run(0.13, seed);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2->converged);
  EXPECT_EQ(r->gossip_messages, r2->gossip_messages);
  EXPECT_NEAR(r2->sim_time - r->sim_time, 0.03, 1e-9);
}

TEST(AsyncGossipTest, TimeCapReported) {
  Graph g = MakePaGraph(200, 2, 25);
  auto y0 = RandomValues(200, 10);
  std::vector<double> g0(200, 1.0);
  AsyncGossipOptions o = Opts(1e-12);
  o.max_time = 3.0;  // a handful of firings only
  AsyncPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->converged);
}

TEST(AsyncGossipTest, SimTimeScalesWithPushPeriod) {
  Graph g = MakePaGraph(60, 2, 26);
  auto y0 = RandomValues(60, 11);
  std::vector<double> g0(60, 1.0);
  AsyncGossipOptions slow = Opts(1e-5);
  slow.push_period = 2.0;
  AsyncGossipOptions fast = Opts(1e-5);
  fast.push_period = 0.5;
  auto rs = AsyncPushSum(&g, slow).Run(y0, g0);
  auto rf = AsyncPushSum(&g, fast).Run(y0, g0);
  ASSERT_TRUE(rs.ok() && rf.ok());
  ASSERT_TRUE(rs->converged && rf->converged);
  EXPECT_GT(rs->sim_time, rf->sim_time);
}

TEST(AsyncGossipTest, FiringsComparableToSyncSteps) {
  // The asynchronous run should need the same order of firings per node
  // as the synchronous engine needs steps.
  Graph g = MakePaGraph(100, 2, 27);
  auto y0 = RandomValues(100, 12);
  std::vector<double> g0(100, 1.0);
  auto r = AsyncPushSum(&g, Opts(1e-6)).Run(y0, g0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  EXPECT_GT(r->max_node_firings, 10u);
  EXPECT_LT(r->max_node_firings, 2000u);
}

TEST(AsyncGossipTest, IsolatedNodesConvergeImmediately) {
  Graph g(4);
  std::vector<double> y0(4, 0.5), g0(4, 1.0);
  AsyncPushSum engine(&g, Opts());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_DOUBLE_EQ(r->sim_time, 0.0);
  for (double v : r->ratios) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(AsyncGossipTest, UniformStrategySupported) {
  Graph g = MakePaGraph(60, 2, 28);
  auto y0 = RandomValues(60, 13);
  std::vector<double> g0(60, 1.0);
  AsyncGossipOptions o = Opts(1e-6);
  o.strategy = PushStrategy::kUniform;
  auto r = AsyncPushSum(&g, o).Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = Mean(y0);
  double mean_err = 0;
  for (double v : r->ratios) mean_err += std::fabs(v - truth);
  EXPECT_LT(mean_err / 60, 5e-3);
}

}  // namespace
}  // namespace dgt
