#include "net/event_queue.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.events_pending(), 0u);
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ClockAdvancesMonotonically) {
  EventQueue q;
  double last = -1.0;
  for (double t : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    q.Schedule(t, [&, t] {
      EXPECT_GT(q.now(), last);
      EXPECT_DOUBLE_EQ(q.now(), t);
      last = q.now();
    });
  }
  q.RunAll();
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  std::vector<double> times;
  q.Schedule(2.0, [&] {
    // Scheduling "in the past" runs at the current time, not before it.
    q.Schedule(1.0, [&] { times.push_back(q.now()); });
  });
  q.RunAll();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
}

TEST(EventQueueTest, ScheduleAfterIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.Schedule(2.0, [&] {
    q.ScheduleAfter(0.5, [&] { fired_at = q.now(); });
  });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

// --- RunUntil / RunAll boundary contract -------------------------------
// The async engine's time-cap handling relies on these exact semantics:
// an event exactly at t_end is *inside* the horizon, anything later stays
// pending, and the clock ends up at the boundary either way.

TEST(EventQueueTest, EventExactlyAtBoundaryRuns) {
  EventQueue q;
  int ran = 0;
  q.Schedule(2.0, [&] { ++ran; });
  q.Schedule(2.0, [&] { ++ran; });  // tie at the boundary runs too
  q.Schedule(2.0000001, [&] { ++ran; });
  EXPECT_EQ(q.RunUntil(2.0), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.events_pending(), 1u);
}

TEST(EventQueueTest, CallbackSchedulingPastBoundaryStaysPending) {
  EventQueue q;
  int ran = 0;
  q.Schedule(1.0, [&] {
    ++ran;
    // Scheduled from inside the horizon, lands outside it: must stay
    // pending and must not drag now() past t_end.
    q.Schedule(3.0, [&] { ++ran; });
  });
  EXPECT_EQ(q.RunUntil(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.events_pending(), 1u);
  // The horizon does not cancel anything: a later RunAll delivers it.
  EXPECT_EQ(q.RunAll(), 1u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, RunUntilOnEmptyQueueAdvancesClock) {
  EventQueue q;
  EXPECT_EQ(q.RunUntil(5.0), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  // A horizon in the past never rewinds the clock.
  EXPECT_EQ(q.RunUntil(1.0), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueueTest, MaxEventsCutoffLeavesRestPending) {
  EventQueue q;
  int ran = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    q.Schedule(t, [&] { ++ran; });
  }
  EXPECT_EQ(q.RunAll(3), 3u);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(q.events_processed(), 3u);
  EXPECT_EQ(q.events_pending(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.RunAll(), 2u);
  EXPECT_EQ(ran, 5);
}

TEST(EventQueueTest, NextEventTimePeeksWithoutPopping) {
  EventQueue q;
  EXPECT_TRUE(std::isinf(q.NextEventTime()));
  q.Schedule(3.0, [] {});
  q.Schedule(1.5, [] {});
  EXPECT_DOUBLE_EQ(q.NextEventTime(), 1.5);
  EXPECT_EQ(q.events_pending(), 2u);  // peeking consumed nothing
  EXPECT_TRUE(q.RunNext());
  EXPECT_DOUBLE_EQ(q.NextEventTime(), 3.0);
  EXPECT_TRUE(q.RunNext());
  EXPECT_TRUE(std::isinf(q.NextEventTime()));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int ran = 0;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    q.Schedule(t, [&] { ++ran; });
  }
  EXPECT_EQ(q.RunUntil(2.5), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.5);  // clock advanced to the boundary
  EXPECT_EQ(q.events_pending(), 2u);
}

TEST(EventQueueTest, CascadingEventsCounted) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.ScheduleAfter(1.0, chain);
  };
  q.Schedule(0.0, chain);
  EXPECT_EQ(q.RunAll(), 5u);
  EXPECT_EQ(q.events_processed(), 5u);
  EXPECT_EQ(depth, 5);
}

TEST(EventQueueTest, RunAllRespectsCap) {
  EventQueue q;
  std::function<void()> forever = [&] { q.ScheduleAfter(1.0, forever); };
  q.Schedule(0.0, forever);
  EXPECT_EQ(q.RunAll(100), 100u);
}

// --- TimedEventHeap ----------------------------------------------------

TEST(TimedEventHeapTest, PopsInTimeOrder) {
  TimedEventHeap<int> h;
  h.Push(3.0, 30);
  h.Push(1.0, 10);
  h.Push(2.0, 20);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.NextTime(), 1.0);
  EXPECT_EQ(h.Pop().payload, 10);
  EXPECT_EQ(h.Pop().payload, 20);
  EXPECT_EQ(h.Pop().payload, 30);
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(std::isinf(h.NextTime()));
}

TEST(TimedEventHeapTest, EqualTimesPopInPushOrder) {
  TimedEventHeap<int> h;
  for (int i = 0; i < 64; ++i) h.Push(1.0, i);
  for (int i = 0; i < 64; ++i) {
    auto item = h.Pop();
    EXPECT_EQ(item.payload, i);
    EXPECT_EQ(item.seq, static_cast<uint64_t>(i));
  }
}

TEST(TimedEventHeapTest, FifoStressUnderInterleavedTimestamps) {
  // Many duplicate timestamps pushed in shuffled bursts: the full pop
  // sequence must be sorted by time and, within a timestamp, by push
  // order — a plain binary heap without the seq tie-break fails this.
  TimedEventHeap<std::pair<int, int>> h;  // (time bucket, push index)
  Rng rng(99);
  std::vector<int> push_index(5, 0);
  for (int burst = 0; burst < 200; ++burst) {
    int bucket = static_cast<int>(rng.NextBelow(5));
    h.Push(static_cast<double>(bucket), {bucket, push_index[bucket]++});
    // Occasionally drain a few to churn the heap's internal layout.
    if (burst % 7 == 6) h.Pop();
  }
  std::pair<int, int> last{-1, -1};
  std::vector<int> next_expected(5, 0);
  while (!h.empty()) {
    auto item = h.Pop();
    EXPECT_GE(item.payload.first, last.first);
    EXPECT_GE(item.payload.second, next_expected[item.payload.first]);
    next_expected[item.payload.first] = item.payload.second + 1;
    last = item.payload;
  }
}

TEST(TimedEventHeapTest, PopWindowIsExclusiveAndOrdered) {
  TimedEventHeap<int> h;
  h.Push(0.5, 1);
  h.Push(1.0, 2);
  h.Push(1.0, 3);
  h.Push(1.5, 4);
  auto window = h.PopWindow(1.5);  // horizon itself excluded
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0].payload, 1);
  EXPECT_EQ(window[1].payload, 2);
  EXPECT_EQ(window[2].payload, 3);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_DOUBLE_EQ(h.NextTime(), 1.5);
}

TEST(TimedEventHeapTest, PopWindowOnEmptyHeapReturnsNothing) {
  TimedEventHeap<int> h;
  EXPECT_TRUE(h.PopWindow(100.0).empty());
}

TEST(TimedEventHeapTest, SupportsMoveOnlyPayloads) {
  TimedEventHeap<std::unique_ptr<int>> h;
  h.Push(2.0, std::make_unique<int>(2));
  h.Push(1.0, std::make_unique<int>(1));
  EXPECT_EQ(*h.Pop().payload, 1);
  EXPECT_EQ(*h.Pop().payload, 2);
}

}  // namespace
}  // namespace dgt
