#include "net/link_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace dgt {
namespace {

TEST(LinkModelTest, RejectsBadOptions) {
  LinkModelOptions o;
  o.access_latency_min = -1.0;
  EXPECT_FALSE(LinkModel::Create(5, o).ok());
  o = {};
  o.access_latency_max = o.access_latency_min - 0.01;
  EXPECT_FALSE(LinkModel::Create(5, o).ok());
  o = {};
  o.backbone_latency = -0.5;
  EXPECT_FALSE(LinkModel::Create(5, o).ok());
  o = {};
  o.jitter = -0.1;
  EXPECT_FALSE(LinkModel::Create(5, o).ok());
}

TEST(LinkModelTest, AccessLatencyWithinRange) {
  LinkModelOptions o;
  o.access_latency_min = 0.01;
  o.access_latency_max = 0.02;
  auto m = LinkModel::Create(100, o);
  ASSERT_TRUE(m.ok());
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_GE(m->AccessLatency(u), 0.01);
    EXPECT_LT(m->AccessLatency(u), 0.02);
  }
}

TEST(LinkModelTest, LatencyDecomposition) {
  LinkModelOptions o;
  o.jitter = 0.0;  // deterministic
  auto m = LinkModel::Create(10, o);
  ASSERT_TRUE(m.ok());
  Rng rng(1);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      double expected =
          m->AccessLatency(u) + o.backbone_latency + m->AccessLatency(v);
      EXPECT_DOUBLE_EQ(m->Latency(u, v, rng), expected);
      EXPECT_DOUBLE_EQ(m->MeanLatency(u, v), expected);
    }
  }
}

TEST(LinkModelTest, JitterAddsBoundedDelay) {
  LinkModelOptions o;
  o.jitter = 0.5;
  auto m = LinkModel::Create(4, o);
  ASSERT_TRUE(m.ok());
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    double l = m->Latency(0, 1, rng);
    EXPECT_GE(l, m->MeanLatency(0, 1));
    EXPECT_LT(l, m->MeanLatency(0, 1) + 0.5);
  }
}

TEST(LinkModelTest, DeterministicPerSeed) {
  LinkModelOptions o;
  o.seed = 7;
  auto a = LinkModel::Create(20, o);
  auto b = LinkModel::Create(20, o);
  ASSERT_TRUE(a.ok() && b.ok());
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_DOUBLE_EQ(a->AccessLatency(u), b->AccessLatency(u));
  }
  o.seed = 8;
  auto c = LinkModel::Create(20, o);
  ASSERT_TRUE(c.ok());
  int differ = 0;
  for (NodeId u = 0; u < 20; ++u) {
    if (a->AccessLatency(u) != c->AccessLatency(u)) ++differ;
  }
  EXPECT_GT(differ, 15);
}

TEST(LinkModelTest, AsymmetricEndpointsSymmetricSum) {
  // access(u) + access(v) is symmetric even though per-node access
  // latencies differ.
  auto m = LinkModel::Create(6, {});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->MeanLatency(2, 4), m->MeanLatency(4, 2));
}

TEST(LinkModelTest, RejectsZeroLatencyLinkNamingTheEdge) {
  // All-zero latencies would give the async engines' lookahead a zero
  // lower bound; construction must fail and name the offending edge.
  LinkModelOptions o;
  o.access_latency_min = 0.0;
  o.access_latency_max = 0.0;
  o.backbone_latency = 0.0;
  o.jitter = 0.0;
  auto m = LinkModel::Create(5, o);
  ASSERT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("zero-latency"), std::string::npos);
  // With identical (zero) access latencies the cheapest pair is 0 -> 1.
  EXPECT_NE(m.status().message().find("0 -> 1"), std::string::npos);
}

TEST(LinkModelTest, ZeroAccessAllowedWhenBackbonePositive) {
  LinkModelOptions o;
  o.access_latency_min = 0.0;
  o.access_latency_max = 0.0;
  o.backbone_latency = 0.02;
  auto m = LinkModel::Create(5, o);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->MinLatency(), 0.02);
}

TEST(LinkModelTest, MinLatencyIsTightLowerBound) {
  auto m = LinkModel::Create(30, {});
  ASSERT_TRUE(m.ok());
  double brute = std::numeric_limits<double>::infinity();
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = 0; v < 30; ++v) {
      if (u != v) brute = std::min(brute, m->MeanLatency(u, v));
    }
  }
  EXPECT_DOUBLE_EQ(m->MinLatency(), brute);
  EXPECT_GT(m->MinLatency(), 0.0);
  // Sampled latencies (jitter included) never undercut the bound.
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    NodeId u = static_cast<NodeId>(rng.NextBelow(30));
    NodeId v = static_cast<NodeId>(rng.NextBelow(30));
    if (u == v) continue;
    EXPECT_GE(m->Latency(u, v, rng), m->MinLatency());
  }
}

TEST(LinkModelTest, MinLatencyInfiniteBelowTwoNodes) {
  auto zero = LinkModel::Create(0, {});
  auto one = LinkModel::Create(1, {});
  ASSERT_TRUE(zero.ok() && one.ok());
  EXPECT_TRUE(std::isinf(zero->MinLatency()));
  EXPECT_TRUE(std::isinf(one->MinLatency()));
}

TEST(LinkModelTest, SamplingDeterministicUnderStreamAt) {
  // Counter-based streams make latency draws a pure function of
  // (seed, stream, counter) — the property the parallel async engine
  // leans on for thread-count-invariant jitter.
  auto m = LinkModel::Create(12, {});
  ASSERT_TRUE(m.ok());
  Rng base(41);
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = 0; v < 12; ++v) {
      if (u == v) continue;
      Rng a = base.StreamAt(u, v);
      Rng b = base.StreamAt(u, v);
      EXPECT_EQ(m->Latency(u, v, a), m->Latency(u, v, b));
    }
  }
}

}  // namespace
}  // namespace dgt
