#include "gossip/scalar_engine.h"

#include <cmath>
#include <numeric>
#include <tuple>

#include "graph/generators.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;
using testing_util::Mean;
using testing_util::RandomValues;

GossipOptions Opts(PushStrategy strategy = PushStrategy::kDifferential,
                   double xi = 1e-7, uint64_t seed = 3) {
  GossipOptions o;
  o.strategy = strategy;
  o.xi = xi;
  o.seed = seed;
  return o;
}

TEST(ScalarEngineTest, RejectsBadInputSizes) {
  Graph g = MakePaGraph(20);
  ScalarPushSum engine(&g, Opts());
  EXPECT_FALSE(engine.Run({1.0}, std::vector<double>(20, 1.0)).ok());
  EXPECT_FALSE(engine.Run(std::vector<double>(20, 1.0), {1.0}).ok());
  EXPECT_FALSE(engine
                   .Run(std::vector<double>(20, 1.0),
                        std::vector<double>(20, 1.0), {1.0})
                   .ok());
}

TEST(ScalarEngineTest, RejectsNegativeWeights) {
  Graph g = MakePaGraph(20);
  ScalarPushSum engine(&g, Opts());
  std::vector<double> y(20, 1.0), w(20, 1.0);
  w[3] = -0.5;
  EXPECT_FALSE(engine.Run(y, w).ok());
}

TEST(ScalarEngineTest, RejectsNonPositiveXi) {
  Graph g = MakePaGraph(20);
  GossipOptions o = Opts();
  o.xi = 0.0;
  ScalarPushSum engine(&g, o);
  EXPECT_FALSE(
      engine.Run(std::vector<double>(20, 1.0), std::vector<double>(20, 1.0))
          .ok());
}

TEST(ScalarEngineTest, MassConservationExact) {
  Graph g = MakePaGraph(100);
  auto y0 = RandomValues(100, 5);
  std::vector<double> g0(100, 1.0);
  ScalarPushSum engine(&g, Opts());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  double sum_g = std::accumulate(r->weights.begin(), r->weights.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
  EXPECT_NEAR(sum_g, 100.0, 1e-9);
}

TEST(ScalarEngineTest, MassConservationUnderPacketLoss) {
  Graph g = MakePaGraph(100);
  auto y0 = RandomValues(100, 6);
  std::vector<double> g0(100, 1.0);
  GossipOptions o = Opts();
  o.packet_loss_prob = 0.25;
  ScalarPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
}

TEST(ScalarEngineTest, ConvergesToAverageOnPaGraph) {
  Graph g = MakePaGraph(200);
  auto y0 = RandomValues(200, 7);
  std::vector<double> g0(200, 1.0);
  ScalarPushSum engine(&g, Opts());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = Mean(y0);
  for (double v : r->ratios) EXPECT_NEAR(v, truth, 5e-3);
}

TEST(ScalarEngineTest, ConvergesOnCompleteGraph) {
  auto g = GenerateComplete(50).value();
  auto y0 = RandomValues(50, 8);
  std::vector<double> g0(50, 1.0);
  ScalarPushSum engine(&g, Opts());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double truth = Mean(y0);
  for (double v : r->ratios) EXPECT_NEAR(v, truth, 5e-3);
}

TEST(ScalarEngineTest, ConvergesOnRing) {
  auto g = GenerateRing(30).value();
  auto y0 = RandomValues(30, 9);
  std::vector<double> g0(30, 1.0);
  ScalarPushSum engine(&g, Opts(PushStrategy::kDifferential, 1e-9));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double truth = Mean(y0);
  for (double v : r->ratios) EXPECT_NEAR(v, truth, 5e-3);
}

TEST(ScalarEngineTest, OneHotWeightEstimatesSum) {
  Graph g = MakePaGraph(100);
  auto y0 = RandomValues(100, 10);
  std::vector<double> g0(100, 0.0);
  g0[0] = 1.0;
  ScalarPushSum engine(&g, Opts(PushStrategy::kDifferential, 1e-9));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double total = std::accumulate(y0.begin(), y0.end(), 0.0);
  for (double v : r->ratios) {
    EXPECT_NEAR(v, total, 0.02 * total);
  }
}

TEST(ScalarEngineTest, SubsetWeightEstimatesSubsetAverage) {
  // Only nodes with odd id carry weight; ratio converges to the mean over
  // weighted nodes (Algorithm 1's average-over-opinators).
  Graph g = MakePaGraph(80);
  auto y0 = RandomValues(80, 11);
  std::vector<double> g0(80, 0.0);
  double sum = 0.0;
  int count = 0;
  for (uint32_t i = 1; i < 80; i += 2) {
    g0[i] = 1.0;
    sum += y0[i];
    ++count;
  }
  for (uint32_t i = 0; i < 80; i += 2) y0[i] = 0.0;  // non-opinators push 0
  ScalarPushSum engine(&g, Opts(PushStrategy::kDifferential, 1e-9));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  double truth = sum / count;
  for (double v : r->ratios) EXPECT_NEAR(v, truth, 5e-3);
}

TEST(ScalarEngineTest, CountChannelEstimatesCardinality) {
  Graph g = MakePaGraph(100);
  std::vector<double> y0(100, 0.0), g0(100, 0.0), c0(100, 0.0);
  g0[0] = 1.0;
  // 40 nodes "have an opinion".
  for (uint32_t i = 0; i < 40; ++i) c0[i] = 1.0;
  ScalarPushSum engine(&g, Opts(PushStrategy::kDifferential, 1e-9));
  auto r = engine.Run(y0, g0, c0);
  ASSERT_TRUE(r.ok());
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_GT(r->weights[i], 0.0);
    EXPECT_NEAR(r->counts[i] / r->weights[i], 40.0, 1.0);
  }
}

TEST(ScalarEngineTest, SentinelReportedWhileWeightZero) {
  // A two-step run cannot spread weight everywhere on a large ring; check
  // the sentinel shows up in ratios for weightless nodes.
  auto g = GenerateRing(64).value();
  std::vector<double> y0(64, 0.0), g0(64, 0.0);
  g0[0] = 1.0;
  y0[0] = 3.0;
  GossipOptions o = Opts(PushStrategy::kUniform, 1e-9);
  o.max_steps = 2;
  ScalarPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->converged);
  int sentinels = 0;
  for (double v : r->ratios) {
    if (v == o.ratio_sentinel) ++sentinels;
  }
  EXPECT_GT(sentinels, 50);
}

TEST(ScalarEngineTest, DeterministicAcrossRuns) {
  Graph g = MakePaGraph(150);
  auto y0 = RandomValues(150, 12);
  std::vector<double> g0(150, 1.0);
  ScalarPushSum a(&g, Opts()), b(&g, Opts());
  auto ra = a.Run(y0, g0);
  auto rb = b.Run(y0, g0);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->steps, rb->steps);
  EXPECT_EQ(ra->gossip_messages, rb->gossip_messages);
  EXPECT_EQ(ra->ratios, rb->ratios);
}

TEST(ScalarEngineTest, SeedChangesTrajectoryNotLimit) {
  Graph g = MakePaGraph(150);
  auto y0 = RandomValues(150, 13);
  std::vector<double> g0(150, 1.0);
  auto ra = ScalarPushSum(&g, Opts(PushStrategy::kDifferential, 1e-8, 1))
                .Run(y0, g0);
  auto rb = ScalarPushSum(&g, Opts(PushStrategy::kDifferential, 1e-8, 2))
                .Run(y0, g0);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_NE(ra->ratios, rb->ratios);
  double truth = Mean(y0);
  for (uint32_t i = 0; i < 150; ++i) {
    EXPECT_NEAR(ra->ratios[i], truth, 5e-3);
    EXPECT_NEAR(rb->ratios[i], truth, 5e-3);
  }
}

TEST(ScalarEngineTest, TraceRecordsEveryStep) {
  Graph g = MakePaGraph(30);
  auto y0 = RandomValues(30, 14);
  std::vector<double> g0(30, 1.0);
  GossipOptions o = Opts();
  o.track_trace = true;
  ScalarPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->trace.size(), r->steps);
  for (const auto& row : r->trace) EXPECT_EQ(row.size(), 30u);
  // Last trace row equals the final ratios.
  EXPECT_EQ(r->trace.back(), r->ratios);
}

TEST(ScalarEngineTest, IsolatedNodesStopImmediately) {
  Graph g(5);  // no edges at all
  std::vector<double> y0(5, 1.0), g0(5, 1.0);
  ScalarPushSum engine(&g, Opts());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_EQ(r->steps, 0u);
  // Isolated nodes keep their own value.
  for (double v : r->ratios) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(ScalarEngineTest, DisconnectedComponentsConvergeSeparately) {
  // Two triangles, no cross edges.
  auto g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2},
                                {3, 4}, {4, 5}, {3, 5}});
  ASSERT_TRUE(g.ok());
  std::vector<double> y0 = {0.0, 0.0, 0.3, 0.9, 0.9, 0.9};
  std::vector<double> g0(6, 1.0);
  ScalarPushSum engine(&*g, Opts(PushStrategy::kDifferential, 1e-10));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(r->ratios[i], 0.1, 1e-3);
  for (int i = 3; i < 6; ++i) EXPECT_NEAR(r->ratios[i], 0.9, 1e-3);
}

TEST(ScalarEngineTest, MaxStepsCapRespected) {
  Graph g = MakePaGraph(500);
  auto y0 = RandomValues(500, 15);
  std::vector<double> g0(500, 1.0);
  GossipOptions o = Opts(PushStrategy::kUniform, 1e-12);
  o.max_steps = 5;
  ScalarPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->steps, 5u);
  EXPECT_FALSE(r->converged);
}

TEST(ScalarEngineTest, DifferentialPushCountsMatchGraph) {
  Graph g = MakePaGraph(100);
  ScalarPushSum engine(&g, Opts());
  const auto& k = engine.push_counts();
  ASSERT_EQ(k.size(), 100u);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_EQ(k[u], g.DifferentialPushCount(u));
  }
}

TEST(ScalarEngineTest, UniformStrategyPushesOnce) {
  Graph g = MakePaGraph(100);
  ScalarPushSum engine(&g, Opts(PushStrategy::kUniform));
  for (uint32_t k : engine.push_counts()) EXPECT_EQ(k, 1u);
}

TEST(ScalarEngineTest, MessageCountersPopulated) {
  Graph g = MakePaGraph(100);
  auto y0 = RandomValues(100, 16);
  std::vector<double> g0(100, 1.0);
  ScalarPushSum engine(&g, Opts());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->gossip_messages, 0u);
  // Control >= degree announcements (2E) + convergence announcements.
  EXPECT_GE(r->control_messages, g.DegreeSum());
  EXPECT_GT(r->mean_messages_per_active_node_step, 1.0);
  EXPECT_LT(r->mean_messages_per_active_node_step, 5.0);
  EXPECT_GT(r->MessagesPerNodePerStep(100), 0.0);
}

TEST(ScalarEngineTest, UniformPushChargesNoDegreeAnnouncements) {
  // Regression: the one-time degree announcements were charged even
  // under plain push, where k_i is constant and no degrees are needed;
  // that inflated the plain-push comparator in Table 2.
  Graph g = MakePaGraph(100);
  auto y0 = RandomValues(100, 16);
  std::vector<double> g0(100, 1.0);
  ScalarPushSum unif(&g, Opts(PushStrategy::kUniform, 1e-6));
  auto ur = unif.Run(y0, g0);
  ASSERT_TRUE(ur.ok());
  ASSERT_TRUE(ur->converged);
  // Convergence announcements only: each node announces exactly once.
  EXPECT_EQ(ur->control_messages, g.DegreeSum());

  ScalarPushSum diff(&g, Opts(PushStrategy::kDifferential, 1e-6));
  auto dr = diff.Run(y0, g0);
  ASSERT_TRUE(dr.ok());
  ASSERT_TRUE(dr->converged);
  // Differential push still pays the degree-announcement round.
  EXPECT_EQ(dr->control_messages, 2 * g.DegreeSum());
}

// Convergence quality across strategy / topology / loss sweeps.
class ScalarSweepTest
    : public ::testing::TestWithParam<std::tuple<PushStrategy, double>> {};

TEST_P(ScalarSweepTest, ConvergesNearTruthWithLoss) {
  auto [strategy, loss] = GetParam();
  Graph g = MakePaGraph(150, 2, 99);
  auto y0 = RandomValues(150, 17);
  std::vector<double> g0(150, 1.0);
  GossipOptions o = Opts(strategy, 1e-8);
  o.packet_loss_prob = loss;
  o.max_steps = 200000;
  ScalarPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = Mean(y0);
  double mean_err = 0;
  for (double v : r->ratios) mean_err += std::fabs(v - truth);
  mean_err /= 150;
  EXPECT_LT(mean_err, 2e-3) << "strategy/loss sweep";
}

INSTANTIATE_TEST_SUITE_P(
    StrategyAndLoss, ScalarSweepTest,
    ::testing::Combine(::testing::Values(PushStrategy::kUniform,
                                         PushStrategy::kDifferential),
                       ::testing::Values(0.0, 0.1, 0.3)));

}  // namespace
}  // namespace dgt
