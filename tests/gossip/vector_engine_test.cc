#include "gossip/vector_engine.h"

#include <numeric>

#include "gossip/scalar_engine.h"
#include "graph/generators.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;
using testing_util::Mean;
using testing_util::RandomValues;

GossipOptions Opts(double xi = 1e-8, uint64_t seed = 3) {
  GossipOptions o;
  o.strategy = PushStrategy::kDifferential;
  o.xi = xi;
  o.seed = seed;
  return o;
}

std::vector<std::vector<double>> Matrix(uint32_t n, double fill) {
  return std::vector<std::vector<double>>(n, std::vector<double>(n, fill));
}

TEST(VectorEngineTest, RejectsBadDimensions) {
  Graph g = MakePaGraph(10);
  VectorPushSum engine(&g, Opts());
  EXPECT_FALSE(engine.Run(Matrix(9, 0.0), Matrix(10, 1.0)).ok());
  auto ragged = Matrix(10, 0.0);
  ragged[4].pop_back();
  EXPECT_FALSE(engine.Run(ragged, Matrix(10, 1.0)).ok());
  EXPECT_FALSE(engine.Run(Matrix(10, 0.0), Matrix(10, 1.0), Matrix(9, 0.0))
                   .ok());
}

TEST(VectorEngineTest, AllColumnsConvergeToColumnAverages) {
  const uint32_t n = 40;
  Graph g = MakePaGraph(n);
  auto y0 = Matrix(n, 0.0);
  auto g0 = Matrix(n, 1.0);
  Rng rng(5);
  std::vector<double> truth(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      y0[i][j] = rng.NextDouble();
      truth[j] += y0[i][j];
    }
  }
  for (auto& t : truth) t /= n;

  VectorPushSum engine(&g, Opts(1e-9));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      EXPECT_NEAR(r->estimates[i][j], truth[j], 5e-3)
          << "node " << i << " target " << j;
    }
  }
}

TEST(VectorEngineTest, MatchesScalarEngineLimitPerColumn) {
  // The vector engine must converge to the same per-column limits as a
  // scalar run (they share the aggregation semantics).
  const uint32_t n = 30;
  Graph g = MakePaGraph(n, 2, 11);
  auto y0 = Matrix(n, 0.0);
  auto g0 = Matrix(n, 0.0);
  Rng rng(6);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (rng.NextBernoulli(0.3)) {
        y0[i][j] = rng.NextDouble();
        g0[i][j] = 1.0;
      }
    }
  }
  VectorPushSum vec(&g, Opts(1e-10));
  auto rv = vec.Run(y0, g0);
  ASSERT_TRUE(rv.ok());

  // Column 7 via the scalar engine.
  std::vector<double> yc(n), gc(n);
  for (uint32_t i = 0; i < n; ++i) {
    yc[i] = y0[i][7];
    gc[i] = g0[i][7];
  }
  ScalarPushSum scal(&g, Opts(1e-10));
  auto rs = scal.Run(yc, gc);
  ASSERT_TRUE(rs.ok());
  // Both approximate sum(yc)/sum(gc) wherever weight reached.
  double truth = std::accumulate(yc.begin(), yc.end(), 0.0) /
                 std::accumulate(gc.begin(), gc.end(), 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(rv->estimates[i][7], truth, 5e-3);
    EXPECT_NEAR(rs->ratios[i], truth, 5e-3);
  }
}

TEST(VectorEngineTest, CountChannelTracksOpinators) {
  const uint32_t n = 30;
  Graph g = MakePaGraph(n, 2, 12);
  auto y0 = Matrix(n, 0.0);
  auto g0 = Matrix(n, 0.0);
  auto c0 = Matrix(n, 0.0);
  // One-hot weight at node j for each column j; 10 opinators per column.
  std::vector<double> expected_count(n, 0.0);
  Rng rng(7);
  for (uint32_t j = 0; j < n; ++j) {
    g0[j][j] = 1.0;
    for (uint32_t i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.35)) {
        c0[i][j] = 1.0;
        expected_count[j] += 1.0;
      }
    }
  }
  VectorPushSum engine(&g, Opts(1e-10));
  auto r = engine.Run(y0, g0, c0);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->count_estimates.empty());
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      EXPECT_NEAR(r->count_estimates[i][j], expected_count[j], 0.5)
          << "node " << i << " target " << j;
    }
  }
}

TEST(VectorEngineTest, MassConservedPerColumn) {
  const uint32_t n = 25;
  Graph g = MakePaGraph(n, 2, 13);
  auto y0 = Matrix(n, 0.0);
  auto g0 = Matrix(n, 1.0);
  Rng rng(8);
  std::vector<double> col_sum(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      y0[i][j] = rng.NextDouble();
      col_sum[j] += y0[i][j];
    }
  }
  GossipOptions o = Opts(1e-6);
  o.packet_loss_prob = 0.2;  // loss must not destroy mass either
  VectorPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  // Recover final y by estimate * weight is not exposed; instead verify
  // the converged estimates are consistent with conserved mass:
  // every estimate approximates col_sum[j] / n.
  for (uint32_t j = 0; j < n; ++j) {
    double expect = col_sum[j] / n;
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_NEAR(r->estimates[i][j], expect, 0.05);
    }
  }
}

TEST(VectorEngineTest, DeterministicAcrossRuns) {
  const uint32_t n = 20;
  Graph g = MakePaGraph(n, 2, 14);
  auto y0 = Matrix(n, 0.5);
  auto g0 = Matrix(n, 1.0);
  VectorPushSum a(&g, Opts()), b(&g, Opts());
  auto ra = a.Run(y0, g0);
  auto rb = b.Run(y0, g0);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->steps, rb->steps);
  EXPECT_EQ(ra->estimates, rb->estimates);
}

TEST(VectorEngineTest, MaxStepsCap) {
  const uint32_t n = 50;
  Graph g = MakePaGraph(n, 2, 15);
  auto y0 = Matrix(n, 0.1);
  auto g0 = Matrix(n, 1.0);
  GossipOptions o = Opts(1e-15);
  o.max_steps = 3;
  VectorPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->steps, 3u);
  EXPECT_FALSE(r->converged);
}

TEST(VectorEngineTest, StatsPopulated) {
  const uint32_t n = 40;
  Graph g = MakePaGraph(n, 2, 16);
  auto y0 = Matrix(n, 0.2);
  auto g0 = Matrix(n, 1.0);
  VectorPushSum engine(&g, Opts(1e-6));
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->gossip_messages, 0u);
  EXPECT_GE(r->control_messages, g.DegreeSum());
  EXPECT_GT(r->mean_messages_per_active_node_step, 0.5);
}

TEST(VectorEngineTest, CountChannelReportsSentinelWhereNoWeight) {
  // Regression: count_estimates used a hard-coded 0.0 fallback where
  // g == 0 while estimates used the sentinel; both must report the
  // sentinel and let the aggregation layer map it to "no information".
  auto g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  auto y0 = Matrix(4, 0.0);
  auto g0 = Matrix(4, 0.0);
  auto c0 = Matrix(4, 0.0);
  g0[0][0] = 1.0;
  y0[0][0] = 0.8;
  c0[0][0] = 1.0;
  GossipOptions o = Opts(1e-9);
  VectorPushSum engine(&*g, o);
  auto r = engine.Run(y0, g0, c0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->estimates[2][0], o.ratio_sentinel);
  EXPECT_EQ(r->count_estimates[2][0], o.ratio_sentinel);
  EXPECT_EQ(r->count_estimates[3][0], o.ratio_sentinel);
  EXPECT_NEAR(r->count_estimates[0][0], 1.0, 1e-6);
}

TEST(VectorEngineTest, UniformPushChargesNoDegreeAnnouncements) {
  // Regression: the one-time degree announcements were charged even
  // under plain push, where k_i is constant and no degrees are needed;
  // that inflated the plain-push comparator in Table 2.
  const uint32_t n = 40;
  Graph g = MakePaGraph(n, 2, 19);
  auto y0 = Matrix(n, 0.2);
  auto g0 = Matrix(n, 1.0);
  GossipOptions unif = Opts(1e-6);
  unif.strategy = PushStrategy::kUniform;
  VectorPushSum ue(&g, unif);
  auto ur = ue.Run(y0, g0);
  ASSERT_TRUE(ur.ok());
  ASSERT_TRUE(ur->converged);
  // Convergence announcements only: each node announces exactly once.
  EXPECT_EQ(ur->control_messages, g.DegreeSum());

  VectorPushSum de(&g, Opts(1e-6));
  auto dr = de.Run(y0, g0);
  ASSERT_TRUE(dr.ok());
  ASSERT_TRUE(dr->converged);
  // Differential push still pays the degree-announcement round.
  EXPECT_EQ(dr->control_messages, 2 * g.DegreeSum());
}

TEST(VectorEngineTest, SentinelForUnreachedWeight) {
  // Disconnected pair: node 2 and 3 form their own component with no
  // weight for column 0 -> sentinel at their entries for column 0.
  auto g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  auto y0 = Matrix(4, 0.0);
  auto g0 = Matrix(4, 0.0);
  g0[0][0] = 1.0;  // weight for column 0 lives only in component {0,1}
  y0[0][0] = 0.8;
  GossipOptions o = Opts(1e-9);
  VectorPushSum engine(&*g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->estimates[2][0], o.ratio_sentinel);
  EXPECT_EQ(r->estimates[3][0], o.ratio_sentinel);
  EXPECT_NEAR(r->estimates[0][0], 0.8, 1e-6);
  EXPECT_NEAR(r->estimates[1][0], 0.8, 1e-6);
}

}  // namespace
}  // namespace dgt
