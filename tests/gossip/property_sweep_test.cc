// Property sweeps over the gossip engines: for every combination of
// topology family, push strategy, k-rounding rule, and packet-loss level,
// the core invariants must hold — exact mass conservation, termination,
// convergence of every ratio to the true average, and sane message
// accounting. These are the library's load-bearing guarantees; each
// parameter point is a distinct ctest case.

#include <cmath>
#include <numeric>
#include <string>
#include <tuple>

#include "gossip/potential.h"
#include "gossip/scalar_engine.h"
#include "graph/generators.h"
#include "graph/pa_generator.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::RandomValues;

enum class Topology { kPa, kComplete, kRing, kStar, kErdosRenyi };

std::string TopologyName(Topology t) {
  switch (t) {
    case Topology::kPa:
      return "Pa";
    case Topology::kComplete:
      return "Complete";
    case Topology::kRing:
      return "Ring";
    case Topology::kStar:
      return "Star";
    case Topology::kErdosRenyi:
      return "ErdosRenyi";
  }
  return "?";
}

Graph MakeTopology(Topology t, uint32_t n) {
  switch (t) {
    case Topology::kPa: {
      PaOptions o;
      o.num_nodes = n;
      o.edges_per_node = 2;
      o.seed = 77;
      return GeneratePreferentialAttachment(o).value();
    }
    case Topology::kComplete:
      return GenerateComplete(n).value();
    case Topology::kRing:
      return GenerateRing(n).value();
    case Topology::kStar:
      return GenerateStar(n).value();
    case Topology::kErdosRenyi: {
      // p chosen to keep G(n, p) connected whp.
      auto g = GenerateErdosRenyi(n, 0.15, 78).value();
      return g;
    }
  }
  return Graph(0);
}

using SweepParam = std::tuple<Topology, PushStrategy, KRounding, double>;

class GossipPropertySweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static constexpr uint32_t kN = 48;

  GossipOptions Options() const {
    auto [topo, strategy, rounding, loss] = GetParam();
    (void)topo;
    GossipOptions o;
    o.strategy = strategy;
    o.k_rounding = rounding;
    o.packet_loss_prob = loss;
    o.xi = 1e-8;
    o.seed = 5;
    o.max_steps = 500000;
    return o;
  }
};

TEST_P(GossipPropertySweep, MassConservedAndConvergesToAverage) {
  auto [topo, strategy, rounding, loss] = GetParam();
  (void)strategy;
  (void)rounding;
  (void)loss;
  Graph g = MakeTopology(topo, kN);
  auto y0 = RandomValues(kN, 9);
  std::vector<double> g0(kN, 1.0);
  ScalarPushSum engine(&g, Options());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->converged) << "did not terminate within the step cap";

  // Invariant 1: exact mass conservation.
  double sum_y = std::accumulate(r->values.begin(), r->values.end(), 0.0);
  double sum_g = std::accumulate(r->weights.begin(), r->weights.end(), 0.0);
  EXPECT_NEAR(sum_y, std::accumulate(y0.begin(), y0.end(), 0.0), 1e-9);
  EXPECT_NEAR(sum_g, static_cast<double>(kN), 1e-9);

  // Invariant 2: every node's estimate near the true average. (The
  // protocol guarantees xi-stability, not exactness; tolerance reflects
  // the slowest-mixing topology in the sweep.)
  double truth = testing_util::Mean(y0);
  double mean_err = 0.0;
  for (double v : r->ratios) mean_err += std::fabs(v - truth);
  mean_err /= kN;
  EXPECT_LT(mean_err, 5e-3);

  // Invariant 3: message accounting is sane — at least one push per
  // active node-step overall, control >= the degree announcements.
  EXPECT_GE(r->gossip_messages, r->steps);
  EXPECT_GE(r->control_messages, g.DegreeSum());
  EXPECT_GT(r->mean_messages_per_active_node_step, 0.9);
}

TEST_P(GossipPropertySweep, DeterministicReplay) {
  auto [topo, s, k, l] = GetParam();
  (void)s;
  (void)k;
  (void)l;
  Graph g = MakeTopology(topo, kN);
  auto y0 = RandomValues(kN, 10);
  std::vector<double> g0(kN, 1.0);
  ScalarPushSum a(&g, Options()), b(&g, Options());
  auto ra = a.Run(y0, g0);
  auto rb = b.Run(y0, g0);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->ratios, rb->ratios);
  EXPECT_EQ(ra->steps, rb->steps);
  EXPECT_EQ(ra->gossip_messages, rb->gossip_messages);
  EXPECT_EQ(ra->control_messages, rb->control_messages);
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  auto [topo, strategy, rounding, loss] = info.param;
  std::string name = TopologyName(topo);
  name += strategy == PushStrategy::kDifferential ? "Diff" : "Unif";
  name += rounding == KRounding::kFloor
              ? "Floor"
              : (rounding == KRounding::kCeil ? "Ceil" : "Round");
  name += loss == 0.0 ? "NoLoss" : "Loss20";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, GossipPropertySweep,
    ::testing::Combine(
        ::testing::Values(Topology::kPa, Topology::kComplete, Topology::kRing,
                          Topology::kStar, Topology::kErdosRenyi),
        ::testing::Values(PushStrategy::kUniform,
                          PushStrategy::kDifferential),
        ::testing::Values(KRounding::kFloor, KRounding::kRound,
                          KRounding::kCeil),
        ::testing::Values(0.0, 0.2)),
    SweepName);

// One-hot sum estimation must hold across topologies too (the Algorithm 2
// machinery); strategy fixed to differential, sweep topology x loss.
class SumEstimationSweep
    : public ::testing::TestWithParam<std::tuple<Topology, double>> {};

TEST_P(SumEstimationSweep, OneHotWeightRecoversTheSum) {
  auto [topo, loss] = GetParam();
  const uint32_t n = 48;
  Graph g = MakeTopology(topo, n);
  auto y0 = RandomValues(n, 11);
  std::vector<double> g0(n, 0.0);
  g0[n / 2] = 1.0;
  GossipOptions o;
  o.xi = 1e-9;
  o.seed = 6;
  o.packet_loss_prob = loss;
  o.max_steps = 500000;
  ScalarPushSum engine(&g, o);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  double total = std::accumulate(y0.begin(), y0.end(), 0.0);
  double mean_err = 0.0;
  for (double v : r->ratios) mean_err += std::fabs(v - total);
  EXPECT_LT(mean_err / n, 0.01 * total);
}

// Theorem 5.2's potential-function decay must hold — and hold
// *identically* — under the threaded tracker: the per-row merge order is
// fixed, so the psi trace at 8 threads is the same doubles as at 1.
class ThreadedPotentialSweep : public ::testing::TestWithParam<Topology> {};

TEST_P(ThreadedPotentialSweep, MonotoneDecayIdenticalAt1And8Threads) {
  Graph g = MakeTopology(GetParam(), 64);
  Rng r1(41), r8(41);
  auto serial = TrackPotential(g, PushStrategy::kDifferential, 30, r1,
                               /*num_threads=*/1);
  auto threaded = TrackPotential(g, PushStrategy::kDifferential, 30, r8,
                                 /*num_threads=*/8);
  ASSERT_TRUE(serial.ok() && threaded.ok());

  // Bit-for-bit identical trace and uniformity metric.
  EXPECT_EQ(threaded->psi, serial->psi);
  EXPECT_EQ(threaded->final_max_relative_deviation,
            serial->final_max_relative_deviation);

  // Monotone decay over 5-step windows down to the noise floor (individual
  // steps may fluctuate; the theorem bounds the expectation).
  ASSERT_EQ(serial->psi.size(), 31u);
  EXPECT_NEAR(serial->psi[0], 63.0, 1e-9);  // psi_0 = N - 1 (eq. 28)
  for (size_t m = 5; m < serial->psi.size(); m += 5) {
    EXPECT_LT(serial->psi[m], serial->psi[m - 5] + 1e-12)
        << "window ending at step " << m;
  }
  EXPECT_LT(serial->psi.back(), 0.05 * serial->psi[0]);
}

INSTANTIATE_TEST_SUITE_P(Topologies, ThreadedPotentialSweep,
                         ::testing::Values(Topology::kPa, Topology::kComplete,
                                           Topology::kErdosRenyi),
                         [](const ::testing::TestParamInfo<Topology>& info) {
                           return TopologyName(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(
    Topologies, SumEstimationSweep,
    ::testing::Combine(::testing::Values(Topology::kPa, Topology::kComplete,
                                         Topology::kRing, Topology::kStar),
                       ::testing::Values(0.0, 0.2)),
    [](const ::testing::TestParamInfo<std::tuple<Topology, double>>& info) {
      return TopologyName(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 0.0 ? "NoLoss" : "Loss20");
    });

}  // namespace
}  // namespace dgt
