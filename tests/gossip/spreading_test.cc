#include "gossip/spreading.h"

#include <cmath>

#include "graph/generators.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;

TEST(SpreadingTest, RejectsBadSource) {
  Graph g = MakePaGraph(20);
  Rng rng(1);
  EXPECT_FALSE(SpreadRumor(g, 20, SpreadProtocol::kPush, 100, rng).ok());
}

TEST(SpreadingTest, SingleInformedNodeCompletesOnConnectedGraph) {
  Graph g = MakePaGraph(200);
  for (auto proto : {SpreadProtocol::kPush, SpreadProtocol::kDifferentialPush,
                     SpreadProtocol::kPull, SpreadProtocol::kPushPull}) {
    Rng rng(2);
    auto r = SpreadRumor(g, 0, proto, 100000, rng);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->completed);
    EXPECT_EQ(r->informed, 200u);
    EXPECT_GT(r->rounds, 0u);
  }
}

TEST(SpreadingTest, MaxRoundsCap) {
  auto g = GenerateRing(1000).value();
  Rng rng(3);
  auto r = SpreadRumor(g, 0, SpreadProtocol::kPush, 3, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->completed);
  EXPECT_LE(r->informed, 7u);  // ring: at most 2 new nodes per round
}

TEST(SpreadingTest, DifferentialPushBeatsPlainPushOnStar) {
  // Star: plain push from the hub informs one leaf per round (coupon
  // collector ~ n log n rounds); differential push informs all leaves in
  // one round because the hub's k equals its degree.
  auto g = GenerateStar(101).value();
  Rng r1(4), r2(4);
  auto plain = SpreadRumor(g, 0, SpreadProtocol::kPush, 100000, r1);
  auto diff =
      SpreadRumor(g, 0, SpreadProtocol::kDifferentialPush, 100000, r2);
  ASSERT_TRUE(plain.ok() && diff.ok());
  EXPECT_TRUE(plain->completed && diff->completed);
  EXPECT_EQ(diff->rounds, 1u);
  EXPECT_GT(plain->rounds, 20u);
}

TEST(SpreadingTest, PullFromLeafIsSlowOnStar) {
  // With pull, all leaves ask the hub every round, so once the hub knows,
  // everyone learns next round; starting at a leaf, the hub pulls from a
  // random leaf and takes ~n rounds to hit the informed one.
  auto g = GenerateStar(51).value();
  Rng r1(5), r2(5);
  auto from_leaf = SpreadRumor(g, 1, SpreadProtocol::kPull, 100000, r1);
  ASSERT_TRUE(from_leaf.ok());
  EXPECT_TRUE(from_leaf->completed);
  EXPECT_GT(from_leaf->rounds, 2u);
  auto from_hub = SpreadRumor(g, 0, SpreadProtocol::kPull, 100000, r2);
  ASSERT_TRUE(from_hub.ok());
  EXPECT_EQ(from_hub->rounds, 1u);
}

TEST(SpreadingTest, PushPullNoSlowerThanEither) {
  Graph g = MakePaGraph(500, 2, 77);
  double push_avg = 0, pp_avg = 0;
  const int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    Rng r1(10 + t), r2(10 + t);
    auto push = SpreadRumor(g, 0, SpreadProtocol::kPush, 100000, r1);
    auto pp = SpreadRumor(g, 0, SpreadProtocol::kPushPull, 100000, r2);
    ASSERT_TRUE(push.ok() && pp.ok());
    push_avg += push->rounds;
    pp_avg += pp->rounds;
  }
  EXPECT_LE(pp_avg, push_avg);
}

TEST(SpreadingTest, RoundsScalePolylogOnPaGraphs) {
  // Theorem 5.1: differential push completes within O((log2 N)^2). Allow a
  // generous constant; the point is it does not scale linearly with N.
  for (uint32_t n : {100u, 1000u, 5000u}) {
    Graph g = MakePaGraph(n, 2, 31);
    Rng rng(6);
    auto r = SpreadRumor(g, 0, SpreadProtocol::kDifferentialPush, 100000, rng);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->completed);
    double log2n = std::log2(static_cast<double>(n));
    EXPECT_LE(r->rounds, 3.0 * log2n * log2n) << "n=" << n;
  }
}

TEST(SpreadingTest, MessagesCounted) {
  Graph g = MakePaGraph(100);
  Rng rng(7);
  auto r = SpreadRumor(g, 0, SpreadProtocol::kPush, 100000, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->messages, 0u);
  // Push sends one message per informed node per round; the total is
  // bounded by n * rounds.
  EXPECT_LE(r->messages, 100ull * r->rounds);
}

TEST(SpreadingTest, SourceAloneOnEdgelessGraphNeverCompletes) {
  Graph g(5);
  Rng rng(8);
  auto r = SpreadRumor(g, 0, SpreadProtocol::kPushPull, 50, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->completed);
  EXPECT_EQ(r->informed, 1u);
}

}  // namespace
}  // namespace dgt
