#include "gossip/push_pull.h"

#include <numeric>

#include "graph/generators.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;
using testing_util::Mean;
using testing_util::RandomValues;

TEST(PushPullTest, RejectsBadInput) {
  Graph g = MakePaGraph(10);
  PushPullOptions o;
  EXPECT_FALSE(RunPushPullAveraging(g, {1.0}, o).ok());
  o.xi = 0.0;
  EXPECT_FALSE(RunPushPullAveraging(g, std::vector<double>(10, 1.0), o).ok());
}

TEST(PushPullTest, ConvergesToMeanOnPaGraph) {
  Graph g = MakePaGraph(100);
  auto v0 = RandomValues(100, 3);
  PushPullOptions o;
  o.xi = 1e-6;
  auto r = RunPushPullAveraging(g, v0, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = Mean(v0);
  for (double v : r->values) EXPECT_NEAR(v, truth, 1e-5);
}

TEST(PushPullTest, MassConservedExactly) {
  Graph g = MakePaGraph(100);
  auto v0 = RandomValues(100, 4);
  PushPullOptions o;
  o.xi = 1e-4;
  auto r = RunPushPullAveraging(g, v0, o);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(std::accumulate(r->values.begin(), r->values.end(), 0.0),
              std::accumulate(v0.begin(), v0.end(), 0.0), 1e-9);
}

TEST(PushPullTest, AlreadyUniformConvergesInZeroSteps) {
  Graph g = MakePaGraph(50);
  std::vector<double> v0(50, 0.7);
  PushPullOptions o;
  auto r = RunPushPullAveraging(g, v0, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_EQ(r->steps, 0u);
  EXPECT_EQ(r->messages, 0u);
}

TEST(PushPullTest, MaxStepsCap) {
  auto g = GenerateRing(200).value();
  std::vector<double> v0(200, 0.0);
  v0[0] = 200.0;
  PushPullOptions o;
  o.xi = 1e-12;
  o.max_steps = 2;
  auto r = RunPushPullAveraging(g, v0, o);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->converged);
  EXPECT_EQ(r->steps, 2u);
}

TEST(PushPullTest, MessagesTwoPerContact) {
  Graph g = MakePaGraph(60);
  auto v0 = RandomValues(60, 5);
  PushPullOptions o;
  o.xi = 1e-5;
  auto r = RunPushPullAveraging(g, v0, o);
  ASSERT_TRUE(r.ok());
  // Every node contacts once per step: messages == 2 * n * steps.
  EXPECT_EQ(r->messages, 2ull * 60 * r->steps);
}

TEST(PushPullTest, DeterministicPerSeed) {
  Graph g = MakePaGraph(80);
  auto v0 = RandomValues(80, 6);
  PushPullOptions o;
  o.xi = 1e-6;
  auto a = RunPushPullAveraging(g, v0, o);
  auto b = RunPushPullAveraging(g, v0, o);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->steps, b->steps);
  EXPECT_EQ(a->values, b->values);
}

TEST(PushPullTest, EmptyGraphTriviallyConverged) {
  Graph g(0);
  PushPullOptions o;
  auto r = RunPushPullAveraging(g, {}, o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
}

}  // namespace
}  // namespace dgt
