#include "gossip/churn_engine.h"

#include <cmath>

#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;
using testing_util::RandomValues;

GossipOptions Gossip(double xi = 1e-7, uint64_t seed = 3) {
  GossipOptions o;
  o.xi = xi;
  o.seed = seed;
  return o;
}

TEST(ChurnEngineTest, RejectsBadInput) {
  Graph g = MakePaGraph(20);
  ChurnPushSum engine(g, Gossip(), {});
  EXPECT_FALSE(engine.Run({1.0}, std::vector<double>(20, 1.0)).ok());
  ChurnOptions bad;
  bad.leave_prob = 1.0;
  EXPECT_FALSE(ChurnPushSum(g, Gossip(), bad)
                   .Run(std::vector<double>(20, 0.5),
                        std::vector<double>(20, 1.0))
                   .ok());
  bad = {};
  bad.join_rate = -1.0;
  EXPECT_FALSE(ChurnPushSum(g, Gossip(), bad)
                   .Run(std::vector<double>(20, 0.5),
                        std::vector<double>(20, 1.0))
                   .ok());
}

TEST(ChurnEngineTest, NoChurnMatchesPlainGossip) {
  Graph g = MakePaGraph(80, 2, 30);
  auto y0 = RandomValues(80, 4);
  std::vector<double> g0(80, 1.0);
  ChurnOptions churn;  // zero rates
  ChurnPushSum engine(g, Gossip(1e-8), churn);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_EQ(r->departures, 0u);
  EXPECT_EQ(r->arrivals, 0u);
  EXPECT_EQ(r->live_count, 80u);
  double truth = testing_util::Mean(y0);
  EXPECT_NEAR(r->expected_ratio, truth, 1e-12);
  for (NodeId i = 0; i < 80; ++i) {
    EXPECT_NEAR(r->ratios[i], truth, 5e-3);
  }
}

TEST(ChurnEngineTest, DeparturesHandOverMass) {
  Graph g = MakePaGraph(100, 2, 31);
  auto y0 = RandomValues(100, 5);
  std::vector<double> g0(100, 1.0);
  ChurnOptions churn;
  churn.leave_prob = 0.01;
  churn.churn_steps = 30;
  ChurnPushSum engine(g, Gossip(1e-7), churn);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->departures, 0u);
  // Mass conservation through handover: the expected ratio is still the
  // initial average (no joins), and survivors converge to it.
  double truth = testing_util::Mean(y0);
  EXPECT_NEAR(r->expected_ratio, truth, 1e-12);
  ASSERT_TRUE(r->converged);
  double err = 0;
  uint32_t live = 0;
  for (NodeId i = 0; i < r->ratios.size(); ++i) {
    if (!r->alive[i]) continue;
    err += std::fabs(r->ratios[i] - truth);
    ++live;
  }
  EXPECT_EQ(live, r->live_count);
  EXPECT_LT(err / live, 0.02);
}

TEST(ChurnEngineTest, ArrivalsJoinAndShiftTheAverage) {
  Graph g = MakePaGraph(60, 2, 32);
  std::vector<double> y0(60, 0.2), g0(60, 1.0);
  ChurnOptions churn;
  churn.join_rate = 1.0;  // one new node per step
  churn.churn_steps = 40;
  churn.seed = 77;
  ChurnPushSum engine(g, Gossip(1e-7), churn);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->arrivals, 40u);
  EXPECT_EQ(r->live_count, 100u);
  // Joined values average ~0.5, so the target moved above 0.2.
  EXPECT_GT(r->expected_ratio, 0.25);
  ASSERT_TRUE(r->converged);
  for (NodeId i = 0; i < r->ratios.size(); ++i) {
    if (!r->alive[i]) continue;
    EXPECT_NEAR(r->ratios[i], r->expected_ratio, 0.02) << "node " << i;
  }
}

TEST(ChurnEngineTest, SimultaneousJoinAndLeave) {
  Graph g = MakePaGraph(100, 2, 33);
  auto y0 = RandomValues(100, 6);
  std::vector<double> g0(100, 1.0);
  ChurnOptions churn;
  churn.leave_prob = 0.005;
  churn.join_rate = 0.5;
  churn.churn_steps = 40;
  ChurnPushSum engine(g, Gossip(1e-7), churn);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  EXPECT_GT(r->departures, 0u);
  EXPECT_GT(r->arrivals, 0u);
  double err = 0;
  uint32_t live = 0;
  for (NodeId i = 0; i < r->ratios.size(); ++i) {
    if (!r->alive[i]) continue;
    err += std::fabs(r->ratios[i] - r->expected_ratio);
    ++live;
  }
  EXPECT_LT(err / live, 0.05);
}

TEST(ChurnEngineTest, DeterministicPerSeeds) {
  Graph g = MakePaGraph(50, 2, 34);
  auto y0 = RandomValues(50, 7);
  std::vector<double> g0(50, 1.0);
  ChurnOptions churn;
  churn.leave_prob = 0.01;
  churn.join_rate = 0.3;
  churn.churn_steps = 20;
  auto a = ChurnPushSum(g, Gossip(1e-6, 5), churn).Run(y0, g0);
  auto b = ChurnPushSum(g, Gossip(1e-6, 5), churn).Run(y0, g0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ratios, b->ratios);
  EXPECT_EQ(a->departures, b->departures);
  EXPECT_EQ(a->arrivals, b->arrivals);
}

TEST(ChurnEngineTest, HeavyChurnStillTerminates) {
  Graph g = MakePaGraph(80, 2, 35);
  auto y0 = RandomValues(80, 8);
  std::vector<double> g0(80, 1.0);
  ChurnOptions churn;
  churn.leave_prob = 0.03;
  churn.join_rate = 2.0;
  churn.churn_steps = 60;
  GossipOptions go = Gossip(1e-5);
  go.max_steps = 20000;
  ChurnPushSum engine(g, go, churn);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged) << "steps=" << r->steps;
  EXPECT_GT(r->arrivals, 60u);
}

TEST(ChurnEngineTest, CapacityBoundsJoins) {
  Graph g = MakePaGraph(20, 2, 36);
  std::vector<double> y0(20, 0.5), g0(20, 1.0);
  ChurnOptions churn;
  churn.join_rate = 5.0;
  churn.churn_steps = 10;
  churn.max_nodes = 25;
  ChurnPushSum engine(g, Gossip(1e-6), churn);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->ratios.size(), 25u);
  EXPECT_EQ(r->arrivals, 5u);
}

}  // namespace
}  // namespace dgt
