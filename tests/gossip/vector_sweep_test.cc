// Parameterized sweeps for the vector engine: per-column convergence to
// the correct limits must survive strategy and packet-loss choices, and
// the count channel must stay consistent with the weight channel.

#include <cmath>
#include <string>
#include <tuple>

#include "gossip/vector_engine.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;

using VecParam = std::tuple<PushStrategy, double>;

class VectorSweep : public ::testing::TestWithParam<VecParam> {
 protected:
  static constexpr uint32_t kN = 32;

  GossipOptions Options() const {
    auto [strategy, loss] = GetParam();
    GossipOptions o;
    o.strategy = strategy;
    o.packet_loss_prob = loss;
    o.xi = 1e-9;
    o.seed = 7;
    o.max_steps = 200000;
    return o;
  }
};

TEST_P(VectorSweep, ColumnsConvergeToColumnLimits) {
  Graph g = MakePaGraph(kN, 2, 120);
  std::vector<std::vector<double>> y0(kN, std::vector<double>(kN, 0.0));
  std::vector<std::vector<double>> g0(kN, std::vector<double>(kN, 0.0));
  Rng rng(8);
  std::vector<double> col_sum(kN, 0.0), col_weight(kN, 0.0);
  for (uint32_t i = 0; i < kN; ++i) {
    for (uint32_t j = 0; j < kN; ++j) {
      if (!rng.NextBernoulli(0.4)) continue;
      y0[i][j] = rng.NextDouble();
      g0[i][j] = 1.0;
      col_sum[j] += y0[i][j];
      col_weight[j] += 1.0;
    }
  }
  VectorPushSum engine(&g, Options());
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  for (uint32_t j = 0; j < kN; ++j) {
    if (col_weight[j] == 0.0) continue;
    double truth = col_sum[j] / col_weight[j];
    for (uint32_t i = 0; i < kN; ++i) {
      EXPECT_NEAR(r->estimates[i][j], truth, 0.01)
          << "node " << i << " target " << j;
    }
  }
}

TEST_P(VectorSweep, CountChannelConsistentWithWeights) {
  Graph g = MakePaGraph(kN, 2, 121);
  std::vector<std::vector<double>> y0(kN, std::vector<double>(kN, 0.0));
  std::vector<std::vector<double>> g0(kN, std::vector<double>(kN, 0.0));
  std::vector<std::vector<double>> c0(kN, std::vector<double>(kN, 0.0));
  Rng rng(9);
  std::vector<double> opinators(kN, 0.0);
  for (uint32_t j = 0; j < kN; ++j) {
    g0[j][j] = 1.0;  // one-hot weight per column
    for (uint32_t i = 0; i < kN; ++i) {
      if (rng.NextBernoulli(0.3)) {
        c0[i][j] = 1.0;
        opinators[j] += 1.0;
      }
    }
  }
  VectorPushSum engine(&g, Options());
  auto r = engine.Run(y0, g0, c0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  for (uint32_t i = 0; i < kN; ++i) {
    for (uint32_t j = 0; j < kN; ++j) {
      EXPECT_NEAR(r->count_estimates[i][j], opinators[j], 0.5)
          << "node " << i << " target " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyAndLoss, VectorSweep,
    ::testing::Combine(::testing::Values(PushStrategy::kUniform,
                                         PushStrategy::kDifferential),
                       ::testing::Values(0.0, 0.15)),
    [](const ::testing::TestParamInfo<VecParam>& info) {
      std::string name = std::get<0>(info.param) ==
                                 PushStrategy::kDifferential
                             ? "Diff"
                             : "Unif";
      name += std::get<1>(info.param) == 0.0 ? "NoLoss" : "Loss15";
      return name;
    });

}  // namespace
}  // namespace dgt
