#include "gossip/potential.h"

#include "graph/generators.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;

TEST(PotentialTest, RejectsEmptyGraph) {
  Graph g(0);
  Rng rng(1);
  EXPECT_FALSE(TrackPotential(g, PushStrategy::kDifferential, 5, rng).ok());
}

TEST(PotentialTest, InitialPotentialIsNMinusOne) {
  // eq. (28): psi_0 = N - 1.
  for (uint32_t n : {10u, 50u, 128u}) {
    Graph g = MakePaGraph(n);
    Rng rng(2);
    auto t = TrackPotential(g, PushStrategy::kDifferential, 0, rng);
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(t->psi.size(), 1u);
    EXPECT_NEAR(t->psi[0], static_cast<double>(n - 1), 1e-9);
  }
}

TEST(PotentialTest, PotentialDecaysMonotonicallyInExpectation) {
  // Individual steps may fluctuate; over 5-step windows the potential must
  // shrink until it reaches the noise floor.
  Graph g = MakePaGraph(100, 2, 21);
  Rng rng(3);
  auto t = TrackPotential(g, PushStrategy::kDifferential, 30, rng);
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->psi.size(), 31u);
  EXPECT_LT(t->psi[5], t->psi[0]);
  EXPECT_LT(t->psi[10], t->psi[5]);
  EXPECT_LT(t->psi[30], 0.05 * t->psi[0]);
}

TEST(PotentialTest, DecayRateBeatsTheoremBound) {
  // Theorem 5.2's recursion for p = 1 gives
  //   E[psi_{n+1}] <= psi_n / 2 + 1/16;
  // verify the *averaged* trajectory respects psi_n <= psi_0 * 0.75^n + c
  // (looser than the theorem, robust to randomness).
  Graph g = MakePaGraph(64, 2, 22);
  double avg_ratio = 0;
  const int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(100 + trial);
    auto t = TrackPotential(g, PushStrategy::kDifferential, 10, rng);
    ASSERT_TRUE(t.ok());
    avg_ratio += t->psi[10] / t->psi[0];
  }
  avg_ratio /= kTrials;
  EXPECT_LT(avg_ratio, 0.1);  // far below 0.75^10 + slack
}

TEST(PotentialTest, UniformityMetricShrinksWithSteps) {
  Graph g = MakePaGraph(64, 2, 23);
  Rng r1(4), r2(4);
  auto short_run = TrackPotential(g, PushStrategy::kDifferential, 3, r1);
  auto long_run = TrackPotential(g, PushStrategy::kDifferential, 60, r2);
  ASSERT_TRUE(short_run.ok() && long_run.ok());
  EXPECT_LT(long_run->final_max_relative_deviation,
            short_run->final_max_relative_deviation);
  // After 60 steps contributions are xi-uniform for a small xi.
  EXPECT_LT(long_run->final_max_relative_deviation, 1e-3);
}

TEST(PotentialTest, DifferentialNoSlowerThanUniformOnStar) {
  // The star is the pathological case for plain push (Chierichetti):
  // compare potential after a fixed horizon.
  auto g = GenerateStar(65).value();
  double diff_psi = 0, unif_psi = 0;
  const int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng r1(200 + trial), r2(200 + trial);
    auto d = TrackPotential(g, PushStrategy::kDifferential, 15, r1);
    auto u = TrackPotential(g, PushStrategy::kUniform, 15, r2);
    ASSERT_TRUE(d.ok() && u.ok());
    diff_psi += d->psi.back();
    unif_psi += u->psi.back();
  }
  EXPECT_LT(diff_psi, unif_psi);
}

TEST(PotentialTest, MassConservationInsideTracker) {
  // Contributions of each node must keep summing to 1 (Proposition A.1);
  // equivalently sum of all contributions == N, so psi can be written with
  // g_j summing to N. We verify indirectly: potential never exceeds psi_0.
  Graph g = MakePaGraph(50, 2, 24);
  Rng rng(5);
  auto t = TrackPotential(g, PushStrategy::kDifferential, 40, rng);
  ASSERT_TRUE(t.ok());
  for (double psi : t->psi) {
    EXPECT_GE(psi, 0.0);
    EXPECT_LE(psi, t->psi[0] + 1e-9);
  }
}

}  // namespace
}  // namespace dgt
