// ParallelSerialEquivalence: the load-bearing guarantee of the threaded
// execution layer — for every engine, every push strategy, and both RNG
// modes, a run at T ∈ {2, 4, 8} worker threads is EXPECT_EQ-on-doubles
// identical to the 1-thread run (which, in kSequential mode, is itself
// bit-for-bit the historical serial engine). Mirrors the PR 2
// sparse/dense equivalence sweep, one dimension up.

#include <tuple>
#include <vector>

#include "gossip/churn_engine.h"
#include "gossip/scalar_engine.h"
#include "gossip/sparse_vector_engine.h"
#include "gossip/vector_engine.h"
#include "net/async_gossip.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;
using testing_util::RandomValues;

constexpr uint32_t kThreadCounts[] = {2, 4, 8};

using SweepParam = std::tuple<PushStrategy, GossipRngMode, double>;

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  auto [strategy, mode, loss] = info.param;
  std::string name =
      strategy == PushStrategy::kDifferential ? "Diff" : "Unif";
  name += mode == GossipRngMode::kSequential ? "SeqRng" : "CounterRng";
  name += loss == 0.0 ? "NoLoss" : "Loss20";
  return name;
}

GossipOptions BaseOptions(SweepParam param) {
  auto [strategy, mode, loss] = param;
  GossipOptions o;
  o.strategy = strategy;
  o.rng_mode = mode;
  o.packet_loss_prob = loss;
  o.xi = 1e-6;
  o.seed = 13;
  o.max_steps = 200000;
  return o;
}

class ParallelSerialEquivalence : public ::testing::TestWithParam<SweepParam> {
};

TEST_P(ParallelSerialEquivalence, ScalarEngine) {
  const uint32_t n = 64;
  Graph g = MakePaGraph(n, 2, 31);
  auto y0 = RandomValues(n, 17);
  std::vector<double> g0(n, 1.0), c0(n, 1.0);

  GossipOptions o = BaseOptions(GetParam());
  o.num_threads = 1;
  ScalarPushSum serial(&g, o);
  auto base = serial.Run(y0, g0, c0);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  for (uint32_t t : kThreadCounts) {
    o.num_threads = t;
    ScalarPushSum engine(&g, o);
    auto r = engine.Run(y0, g0, c0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ratios, base->ratios) << "T=" << t;
    EXPECT_EQ(r->values, base->values) << "T=" << t;
    EXPECT_EQ(r->weights, base->weights) << "T=" << t;
    EXPECT_EQ(r->counts, base->counts) << "T=" << t;
    EXPECT_EQ(r->steps, base->steps) << "T=" << t;
    EXPECT_EQ(r->converged, base->converged) << "T=" << t;
    EXPECT_EQ(r->gossip_messages, base->gossip_messages) << "T=" << t;
    EXPECT_EQ(r->control_messages, base->control_messages) << "T=" << t;
    EXPECT_EQ(r->mean_messages_per_active_node_step,
              base->mean_messages_per_active_node_step)
        << "T=" << t;
  }
}

TEST_P(ParallelSerialEquivalence, DenseAndSparseVectorEngines) {
  const uint32_t n = 24;
  Graph g = MakePaGraph(n, 2, 32);

  // GCLR-shaped state (sparse opinions, one-hot diagonal weight, count
  // channel) — the hardest case, exercising all three channels.
  std::vector<std::vector<double>> y0(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> g0(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> c0(n, std::vector<double>(n, 0.0));
  Rng rng(55);
  for (uint32_t i = 0; i < n; ++i) {
    g0[i][i] = 1.0;
    for (uint32_t j = 0; j < n; ++j) {
      if (i != j && rng.NextBernoulli(0.25)) {
        y0[i][j] = rng.NextDouble();
        c0[i][j] = 1.0;
      }
    }
  }
  std::vector<SparseVectorRow> sparse_init(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (y0[i][j] == 0.0 && g0[i][j] == 0.0 && c0[i][j] == 0.0) continue;
      sparse_init[i].cols.push_back(j);
      sparse_init[i].y.push_back(y0[i][j]);
      sparse_init[i].g.push_back(g0[i][j]);
      sparse_init[i].c.push_back(c0[i][j]);
    }
  }

  GossipOptions o = BaseOptions(GetParam());
  o.xi = 1e-5;
  o.num_threads = 1;
  VectorPushSum dense_serial(&g, o);
  auto dense_base = dense_serial.Run(y0, g0, c0);
  ASSERT_TRUE(dense_base.ok()) << dense_base.status().ToString();
  SparseVectorPushSum sparse_serial(&g, o);
  auto sparse_base = sparse_serial.Run(sparse_init, /*use_count=*/true);
  ASSERT_TRUE(sparse_base.ok()) << sparse_base.status().ToString();

  for (uint32_t t : kThreadCounts) {
    o.num_threads = t;
    VectorPushSum dense(&g, o);
    auto dr = dense.Run(y0, g0, c0);
    ASSERT_TRUE(dr.ok()) << dr.status().ToString();
    EXPECT_EQ(dr->estimates, dense_base->estimates) << "T=" << t;
    EXPECT_EQ(dr->count_estimates, dense_base->count_estimates) << "T=" << t;
    EXPECT_EQ(dr->steps, dense_base->steps) << "T=" << t;
    EXPECT_EQ(dr->gossip_messages, dense_base->gossip_messages) << "T=" << t;
    EXPECT_EQ(dr->control_messages, dense_base->control_messages)
        << "T=" << t;

    SparseVectorPushSum sparse(&g, o);
    auto sr = sparse.Run(sparse_init, /*use_count=*/true);
    ASSERT_TRUE(sr.ok()) << sr.status().ToString();
    ASSERT_EQ(sr->rows.size(), sparse_base->rows.size());
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(sr->rows[i].cols, sparse_base->rows[i].cols) << "T=" << t;
      EXPECT_EQ(sr->rows[i].estimates, sparse_base->rows[i].estimates)
          << "T=" << t;
      EXPECT_EQ(sr->rows[i].count_estimates,
                sparse_base->rows[i].count_estimates)
          << "T=" << t;
    }
    EXPECT_EQ(sr->steps, sparse_base->steps) << "T=" << t;
    EXPECT_EQ(sr->gossip_messages, sparse_base->gossip_messages) << "T=" << t;
    EXPECT_EQ(sr->control_messages, sparse_base->control_messages)
        << "T=" << t;
    // The serial-replay accounting makes even the memory metric
    // thread-count invariant.
    EXPECT_EQ(sr->peak_state_nonzeros, sparse_base->peak_state_nonzeros)
        << "T=" << t;
  }
}

TEST_P(ParallelSerialEquivalence, ChurnEngine) {
  const uint32_t n = 48;
  Graph g = MakePaGraph(n, 2, 33);
  auto y0 = RandomValues(n, 19);
  std::vector<double> g0(n, 1.0);

  GossipOptions o = BaseOptions(GetParam());
  o.xi = 1e-5;
  ChurnOptions churn;
  churn.leave_prob = 0.01;
  churn.join_rate = 0.5;
  churn.churn_steps = 20;
  churn.seed = 7;

  o.num_threads = 1;
  ChurnPushSum serial(g, o, churn);
  auto base = serial.Run(y0, g0);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  for (uint32_t t : kThreadCounts) {
    o.num_threads = t;
    ChurnPushSum engine(g, o, churn);
    auto r = engine.Run(y0, g0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ratios, base->ratios) << "T=" << t;
    EXPECT_EQ(r->alive, base->alive) << "T=" << t;
    EXPECT_EQ(r->live_count, base->live_count) << "T=" << t;
    EXPECT_EQ(r->departures, base->departures) << "T=" << t;
    EXPECT_EQ(r->arrivals, base->arrivals) << "T=" << t;
    EXPECT_EQ(r->expected_ratio, base->expected_ratio) << "T=" << t;
    EXPECT_EQ(r->steps, base->steps) << "T=" << t;
    EXPECT_EQ(r->gossip_messages, base->gossip_messages) << "T=" << t;
    EXPECT_EQ(r->control_messages, base->control_messages) << "T=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ParallelSerialEquivalence,
    ::testing::Combine(::testing::Values(PushStrategy::kUniform,
                                         PushStrategy::kDifferential),
                       ::testing::Values(GossipRngMode::kSequential,
                                         GossipRngMode::kCounter),
                       ::testing::Values(0.0, 0.2)),
    SweepName);

// The event-driven engine's windowed lookahead executor: a run at any
// thread count (0 = auto included) is EXPECT_EQ-on-doubles identical to
// the 1-thread run, for all three value policies — the async analogue of
// the synchronous sweep above, and the retirement of the old "serialised
// engine" InvalidArgument on num_threads.
TEST(AsyncEquivalence, ScalarPolicyThreadCountInvariant) {
  const uint32_t n = 48;
  Graph g = MakePaGraph(n, 2, 34);
  auto y0 = RandomValues(n, 23);
  std::vector<double> g0(n, 1.0);

  AsyncGossipOptions o;
  o.xi = 1e-5;
  o.seed = 11;
  o.packet_loss_prob = 0.1;  // exercise the loss/bounce path too
  o.num_threads = 1;
  AsyncPushSum serial(&g, o);
  auto base = serial.Run(y0, g0);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(base->converged);

  for (uint32_t t : {uint32_t{0}, uint32_t{2}, uint32_t{4}, uint32_t{8}}) {
    o.num_threads = t;
    AsyncPushSum engine(&g, o);
    auto r = engine.Run(y0, g0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ratios, base->ratios) << "T=" << t;
    EXPECT_EQ(r->values, base->values) << "T=" << t;
    EXPECT_EQ(r->weights, base->weights) << "T=" << t;
    EXPECT_EQ(r->converged, base->converged) << "T=" << t;
    EXPECT_EQ(r->sim_time, base->sim_time) << "T=" << t;
    EXPECT_EQ(r->gossip_messages, base->gossip_messages) << "T=" << t;
    EXPECT_EQ(r->control_messages, base->control_messages) << "T=" << t;
    EXPECT_EQ(r->events, base->events) << "T=" << t;
    EXPECT_EQ(r->max_node_firings, base->max_node_firings) << "T=" << t;
  }
}

TEST(AsyncEquivalence, VectorAndSparsePoliciesThreadCountInvariant) {
  const uint32_t n = 20;
  Graph g = MakePaGraph(n, 2, 36);

  // GCLR-shaped state (sparse opinions, one-hot diagonal weight, count
  // channel), mirroring the synchronous sweep's hardest case.
  std::vector<std::vector<double>> y0(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> g0(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> c0(n, std::vector<double>(n, 0.0));
  Rng rng(56);
  for (uint32_t i = 0; i < n; ++i) {
    g0[i][i] = 1.0;
    for (uint32_t j = 0; j < n; ++j) {
      if (i != j && rng.NextBernoulli(0.25)) {
        y0[i][j] = rng.NextDouble();
        c0[i][j] = 1.0;
      }
    }
  }
  std::vector<SparseVectorRow> sparse_init(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (y0[i][j] == 0.0 && g0[i][j] == 0.0 && c0[i][j] == 0.0) continue;
      sparse_init[i].cols.push_back(j);
      sparse_init[i].y.push_back(y0[i][j]);
      sparse_init[i].g.push_back(g0[i][j]);
      sparse_init[i].c.push_back(c0[i][j]);
    }
  }

  AsyncGossipOptions o;
  o.xi = 1e-4;
  o.seed = 12;
  o.num_threads = 1;
  AsyncVectorPushSum dense_serial(&g, o);
  auto dense_base = dense_serial.Run(y0, g0, c0);
  ASSERT_TRUE(dense_base.ok()) << dense_base.status().ToString();
  AsyncSparsePushSum sparse_serial(&g, o);
  auto sparse_base = sparse_serial.Run(sparse_init, /*use_count=*/true);
  ASSERT_TRUE(sparse_base.ok()) << sparse_base.status().ToString();
  ASSERT_TRUE(sparse_base->stats.converged);

  for (uint32_t t : kThreadCounts) {
    o.num_threads = t;
    AsyncVectorPushSum dense(&g, o);
    auto dr = dense.Run(y0, g0, c0);
    ASSERT_TRUE(dr.ok()) << dr.status().ToString();
    EXPECT_EQ(dr->y, dense_base->y) << "T=" << t;
    EXPECT_EQ(dr->g, dense_base->g) << "T=" << t;
    EXPECT_EQ(dr->c, dense_base->c) << "T=" << t;
    EXPECT_EQ(dr->stats.sim_time, dense_base->stats.sim_time) << "T=" << t;
    EXPECT_EQ(dr->stats.gossip_messages, dense_base->stats.gossip_messages)
        << "T=" << t;
    EXPECT_EQ(dr->stats.events, dense_base->stats.events) << "T=" << t;

    AsyncSparsePushSum sparse(&g, o);
    auto sr = sparse.Run(sparse_init, /*use_count=*/true);
    ASSERT_TRUE(sr.ok()) << sr.status().ToString();
    ASSERT_EQ(sr->rows.size(), sparse_base->rows.size());
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(sr->rows[i].cols, sparse_base->rows[i].cols) << "T=" << t;
      EXPECT_EQ(sr->rows[i].y, sparse_base->rows[i].y) << "T=" << t;
      EXPECT_EQ(sr->rows[i].g, sparse_base->rows[i].g) << "T=" << t;
      EXPECT_EQ(sr->rows[i].c, sparse_base->rows[i].c) << "T=" << t;
    }
    EXPECT_EQ(sr->stats.converged, sparse_base->stats.converged) << "T=" << t;
    EXPECT_EQ(sr->stats.sim_time, sparse_base->stats.sim_time) << "T=" << t;
    EXPECT_EQ(sr->stats.gossip_messages, sparse_base->stats.gossip_messages)
        << "T=" << t;
    EXPECT_EQ(sr->stats.control_messages, sparse_base->stats.control_messages)
        << "T=" << t;
    EXPECT_EQ(sr->stats.events, sparse_base->stats.events) << "T=" << t;
    EXPECT_EQ(sr->stats.max_node_firings, sparse_base->stats.max_node_firings)
        << "T=" << t;
  }
}

// The two RNG modes are different (equally valid) draw sequences; pin
// that kCounter actually changes the sequence so a silent fallback to the
// sequential path cannot masquerade as counter-mode support.
TEST(RngModeContract, CounterModeIsADistinctSequence) {
  const uint32_t n = 64;
  Graph g = MakePaGraph(n, 2, 35);
  auto y0 = RandomValues(n, 29);
  std::vector<double> g0(n, 1.0);

  GossipOptions o;
  o.xi = 1e-6;
  o.seed = 3;
  o.rng_mode = GossipRngMode::kSequential;
  ScalarPushSum seq(&g, o);
  auto rs = seq.Run(y0, g0);
  o.rng_mode = GossipRngMode::kCounter;
  ScalarPushSum ctr(&g, o);
  auto rc = ctr.Run(y0, g0);
  ASSERT_TRUE(rs.ok() && rc.ok());
  // Same aggregate (both converge to the average)…
  double truth = 0.0;
  for (double v : y0) truth += v;
  truth /= n;
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(rs->ratios[i], truth, 1e-2);
    EXPECT_NEAR(rc->ratios[i], truth, 1e-2);
  }
  // …through different trajectories.
  EXPECT_NE(rs->ratios, rc->ratios);
}

}  // namespace
}  // namespace dgt
