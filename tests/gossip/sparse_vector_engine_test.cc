#include "gossip/sparse_vector_engine.h"

#include <tuple>
#include <vector>

#include "gossip/vector_engine.h"
#include "graph/graph.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::MakePaGraph;

GossipOptions Opts(double xi = 1e-8, uint64_t seed = 3) {
  GossipOptions o;
  o.strategy = PushStrategy::kDifferential;
  o.xi = xi;
  o.seed = seed;
  return o;
}

std::vector<std::vector<double>> Matrix(uint32_t n, double fill) {
  return std::vector<std::vector<double>>(n, std::vector<double>(n, fill));
}

// Sparse rows equivalent to dense row-major matrices (zeros dropped).
std::vector<SparseVectorRow> FromDense(
    const std::vector<std::vector<double>>& y0,
    const std::vector<std::vector<double>>& g0,
    const std::vector<std::vector<double>>& c0 = {}) {
  const uint32_t n = static_cast<uint32_t>(y0.size());
  std::vector<SparseVectorRow> rows(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      const double c = c0.empty() ? 0.0 : c0[i][j];
      if (y0[i][j] == 0.0 && g0[i][j] == 0.0 && c == 0.0) continue;
      rows[i].cols.push_back(j);
      rows[i].y.push_back(y0[i][j]);
      rows[i].g.push_back(g0[i][j]);
      if (!c0.empty()) rows[i].c.push_back(c);
    }
  }
  return rows;
}

TEST(SparseVectorEngineTest, RejectsBadInput) {
  Graph g = MakePaGraph(10);
  SparseVectorPushSum engine(&g, Opts());
  // Wrong row count.
  EXPECT_FALSE(engine.Run(std::vector<SparseVectorRow>(9), false).ok());
  // Value arrays not parallel to cols.
  std::vector<SparseVectorRow> rows(10);
  rows[0].cols = {1};
  rows[0].y = {0.5};
  EXPECT_FALSE(engine.Run(rows, false).ok());
  rows[0].g = {1.0};
  EXPECT_TRUE(engine.Run(rows, false).ok());
  // Count channel demanded but not provided.
  EXPECT_FALSE(engine.Run(rows, true).ok());
  // Count channel provided but not demanded.
  rows[0].c = {1.0};
  EXPECT_FALSE(engine.Run(rows, false).ok());
  rows[0].c.clear();
  // Out-of-range column.
  rows[3].cols = {10};
  rows[3].y = {0.1};
  rows[3].g = {1.0};
  EXPECT_FALSE(engine.Run(rows, false).ok());
  // Unsorted / duplicate columns.
  rows[3].cols = {4, 2};
  rows[3].y = {0.1, 0.2};
  rows[3].g = {1.0, 1.0};
  EXPECT_FALSE(engine.Run(rows, false).ok());
  rows[3].cols = {2, 2};
  EXPECT_FALSE(engine.Run(rows, false).ok());
  rows[3].cols = {2, 4};
  EXPECT_TRUE(engine.Run(rows, false).ok());
  // xi must be positive.
  GossipOptions bad = Opts();
  bad.xi = 0.0;
  SparseVectorPushSum bad_engine(&g, bad);
  EXPECT_FALSE(bad_engine.Run(std::vector<SparseVectorRow>(10), false).ok());
}

// The load-bearing guarantee: for the same options and initial state the
// sparse engine reproduces the dense engine bit for bit — estimates, step
// count, message counts, and the Table 2 metric. Swept over network size,
// push strategy, packet loss, and the count channel.
using EquivalenceParam = std::tuple<uint32_t, PushStrategy, double, bool>;

class SparseDenseEquivalence
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(SparseDenseEquivalence, BitForBitIdenticalToDenseEngine) {
  auto [n, strategy, loss, use_count] = GetParam();
  Graph g = MakePaGraph(n, 2, 21 + n);

  // GCLR-shaped state: sparse opinions (y, count) plus a one-hot weight
  // on the diagonal — the hardest case, exercising all three channels.
  auto y0 = Matrix(n, 0.0);
  auto g0 = Matrix(n, 0.0);
  auto c0 = Matrix(n, 0.0);
  Rng rng(91 + n);
  for (uint32_t i = 0; i < n; ++i) {
    g0[i][i] = 1.0;
    for (uint32_t j = 0; j < n; ++j) {
      if (i != j && rng.NextBernoulli(0.2)) {
        y0[i][j] = rng.NextDouble();
        c0[i][j] = 1.0;
      }
    }
  }

  GossipOptions o = Opts(1e-6, 7);
  o.strategy = strategy;
  o.packet_loss_prob = loss;

  VectorPushSum dense(&g, o);
  SparseVectorPushSum sparse(&g, o);
  auto rd = use_count ? dense.Run(y0, g0, c0) : dense.Run(y0, g0);
  auto rs = sparse.Run(
      use_count ? FromDense(y0, g0, c0) : FromDense(y0, g0), use_count);
  ASSERT_TRUE(rd.ok()) << rd.status().ToString();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  EXPECT_EQ(rd->steps, rs->steps);
  EXPECT_EQ(rd->converged, rs->converged);
  EXPECT_EQ(rd->gossip_messages, rs->gossip_messages);
  EXPECT_EQ(rd->control_messages, rs->control_messages);
  EXPECT_EQ(rd->mean_messages_per_active_node_step,
            rs->mean_messages_per_active_node_step);
  EXPECT_EQ(rd->estimates, rs->DenseEstimates(o.ratio_sentinel));
  if (use_count) {
    EXPECT_EQ(rd->count_estimates,
              rs->DenseCountEstimates(o.ratio_sentinel));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesStrategiesLossChannels, SparseDenseEquivalence,
    ::testing::Combine(::testing::Values(16u, 33u, 64u),
                       ::testing::Values(PushStrategy::kDifferential,
                                         PushStrategy::kUniform),
                       ::testing::Values(0.0, 0.2),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      std::string name = "N" + std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) == PushStrategy::kDifferential
                  ? "Diff"
                  : "Unif";
      name += std::get<2>(info.param) == 0.0 ? "NoLoss" : "Loss20";
      name += std::get<3>(info.param) ? "Count" : "NoCount";
      return name;
    });

TEST(SparseVectorEngineTest, AllColumnsConvergeToColumnAverages) {
  const uint32_t n = 40;
  Graph g = MakePaGraph(n);
  auto y0 = Matrix(n, 0.0);
  auto g0 = Matrix(n, 1.0);
  Rng rng(5);
  std::vector<double> truth(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      y0[i][j] = rng.NextDouble();
      truth[j] += y0[i][j];
    }
  }
  for (auto& t : truth) t /= n;

  SparseVectorPushSum engine(&g, Opts(1e-9));
  auto r = engine.Run(FromDense(y0, g0), false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  auto est = r->DenseEstimates(Opts().ratio_sentinel);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      EXPECT_NEAR(est[i][j], truth[j], 5e-3)
          << "node " << i << " target " << j;
    }
  }
}

TEST(SparseVectorEngineTest, SentinelForUnreachedWeight) {
  // Disconnected pair: nodes 2 and 3 form their own component with no
  // weight for column 0 -> absent from their result rows, sentinel when
  // densified (count channel included — the count sentinel regression).
  auto g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  auto y0 = Matrix(4, 0.0);
  auto g0 = Matrix(4, 0.0);
  auto c0 = Matrix(4, 0.0);
  g0[0][0] = 1.0;
  y0[0][0] = 0.8;
  c0[0][0] = 1.0;
  GossipOptions o = Opts(1e-9);
  SparseVectorPushSum engine(&*g, o);
  auto r = engine.Run(FromDense(y0, g0, c0), true);
  ASSERT_TRUE(r.ok());
  auto est = r->DenseEstimates(o.ratio_sentinel);
  auto cnt = r->DenseCountEstimates(o.ratio_sentinel);
  EXPECT_EQ(est[2][0], o.ratio_sentinel);
  EXPECT_EQ(est[3][0], o.ratio_sentinel);
  EXPECT_EQ(cnt[2][0], o.ratio_sentinel);
  EXPECT_EQ(cnt[3][0], o.ratio_sentinel);
  EXPECT_NEAR(est[0][0], 0.8, 1e-6);
  EXPECT_NEAR(est[1][0], 0.8, 1e-6);
}

TEST(SparseVectorEngineTest, DeterministicAcrossRuns) {
  const uint32_t n = 20;
  Graph g = MakePaGraph(n, 2, 14);
  auto y0 = Matrix(n, 0.5);
  auto g0 = Matrix(n, 1.0);
  SparseVectorPushSum a(&g, Opts()), b(&g, Opts());
  auto ra = a.Run(FromDense(y0, g0), false);
  auto rb = b.Run(FromDense(y0, g0), false);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->steps, rb->steps);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(ra->rows[i].cols, rb->rows[i].cols);
    EXPECT_EQ(ra->rows[i].estimates, rb->rows[i].estimates);
  }
}

TEST(SparseVectorEngineTest, MaxStepsCap) {
  const uint32_t n = 50;
  Graph g = MakePaGraph(n, 2, 15);
  auto y0 = Matrix(n, 0.1);
  auto g0 = Matrix(n, 1.0);
  GossipOptions o = Opts(1e-15);
  o.max_steps = 3;
  SparseVectorPushSum engine(&g, o);
  auto r = engine.Run(FromDense(y0, g0), false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->steps, 3u);
  EXPECT_FALSE(r->converged);
}

TEST(SparseVectorEngineTest, UniformPushChargesNoDegreeAnnouncements) {
  const uint32_t n = 60;
  Graph g = MakePaGraph(n, 2, 17);
  auto y0 = Matrix(n, 0.3);
  auto g0 = Matrix(n, 1.0);
  GossipOptions o = Opts(1e-6);
  o.strategy = PushStrategy::kUniform;
  SparseVectorPushSum engine(&g, o);
  auto r = engine.Run(FromDense(y0, g0), false);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->converged);
  // Every node announces convergence once (degree messages); there is no
  // degree-announcement round because plain push never uses degrees.
  EXPECT_EQ(r->control_messages, g.DegreeSum());
}

TEST(SparseVectorEngineTest, EarlyStateStaysProportionalToNonzeros) {
  // One opinion per node: after s steps a row can only contain columns
  // from its s-hop senders, so a capped run keeps the live state far
  // smaller than N x N. This is the memory property the dense engine
  // lacks by construction.
  const uint32_t n = 64;
  Graph g = MakePaGraph(n, 2, 18);
  std::vector<SparseVectorRow> init(n);
  for (uint32_t i = 0; i < n; ++i) {
    init[i].cols = {(i + 1) % n};
    init[i].y = {0.5};
    init[i].g = {1.0};
  }
  GossipOptions o = Opts(1e-12);
  o.max_steps = 2;
  SparseVectorPushSum engine(&g, o);
  auto r = engine.Run(std::move(init), false);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->peak_state_nonzeros, 0u);
  EXPECT_LT(r->peak_state_nonzeros, static_cast<uint64_t>(n) * n / 4);
}

}  // namespace
}  // namespace dgt
