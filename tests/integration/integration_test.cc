// Cross-module integration tests: the full pipeline the paper describes,
// from overlay generation through trust estimation, differential gossip
// aggregation, and collusion resistance.

#include <cmath>

#include "baselines/gossip_trust.h"
#include "collusion/analysis.h"
#include "collusion/collusion_model.h"
#include "collusion/rms_error.h"
#include "gossip/scalar_engine.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "reputation/aggregation.h"
#include "reputation/reference.h"
#include "test_util.h"
#include "gtest/gtest.h"

namespace dgt {
namespace {

using testing_util::FillTrust;
using testing_util::MakePaGraph;

AggregationOptions Opts(double xi = 1e-8) {
  AggregationOptions o;
  o.gossip.xi = xi;
  o.weights.a = 4.0;
  o.weights.b = 1.0;
  return o;
}

TEST(IntegrationTest, EndToEndGclrTracksGroundTruthQuality) {
  // Pipeline: PA overlay -> edge trust from intrinsic qualities ->
  // GCLR aggregation. GCLR divides by all nodes' weights with t = 0 for
  // strangers (eq. 4), so its scale is deflated versus the intrinsic
  // quality — but for each observer it must *order* targets by quality:
  // require strong per-observer correlation.
  Graph g = MakePaGraph(128, 2, 300);
  TrustMatrix t(128);
  auto quality = FillTrust(g, &t, 301, /*noise=*/0.02);

  // (a) The global opinator mean recovers the intrinsic quality directly
  // (each rating is quality +- noise).
  auto global = AggregateGlobalVector(g, t, Opts());
  ASSERT_TRUE(global.ok());
  ASSERT_TRUE(global->stats.converged);
  for (NodeId j = 0; j < 128; ++j) {
    if (t.OpinionCountAbout(j) == 0) continue;
    EXPECT_NEAR(global->estimates[0][j], quality[j], 0.05) << "target " << j;
  }

  // (b) GCLR deflates low-degree targets (denominator excess + N_d(j)),
  // so it tracks quality only up to a degree confound — require a
  // moderate positive correlation at sampled observers.
  auto r = AggregateGclrVector(g, t, Opts());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->stats.converged);
  for (NodeId i = 0; i < 128; i += 16) {  // sample of observers
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    uint32_t count = 0;
    for (NodeId j = 0; j < 128; ++j) {
      if (t.OpinionCountAbout(j) == 0) continue;
      double x = r->estimates[i][j];
      double y = quality[j];
      sx += x;
      sy += y;
      sxx += x * x;
      syy += y * y;
      sxy += x * y;
      ++count;
    }
    ASSERT_GT(count, 10u);
    double cov = sxy - sx * sy / count;
    double vx = sxx - sx * sx / count;
    double vy = syy - sy * sy / count;
    ASSERT_GT(vx, 0.0);
    double corr = cov / std::sqrt(vx * vy);
    EXPECT_GT(corr, 0.3) << "observer " << i;
  }
}

std::vector<std::vector<double>> HonestRows(
    const std::vector<std::vector<double>>& estimates,
    const CollusionPlan& plan) {
  std::vector<std::vector<double>> out;
  for (NodeId i = 0; i < estimates.size(); ++i) {
    if (!plan.IsColluder(i)) out.push_back(estimates[i]);
  }
  return out;
}

TEST(IntegrationTest, DifferentialGossipMoreCollusionResistantThanPlain) {
  // The paper's Fig. 6 claim: under individual collusion, differential
  // gossip trust (weighted GCLR) suffers clearly lower RMS error at
  // honest observers than the GossipTrust-style unweighted global
  // aggregation. Experiment model per section 5.2: honest nodes distrust
  // colluders (they experienced their bad service), so colluders' lies
  // carry weight ~1 while trusted honest reports dominate.
  const uint32_t kN = 96;
  Graph g = MakePaGraph(kN, 2, 302);

  CollusionConfig cfg;
  cfg.colluding_fraction = 0.3;
  cfg.group_size = 1;
  cfg.seed = 304;
  auto plan = MakeCollusionPlan(kN, cfg).value();
  Rng rng(303);
  ExperimentTrust world = BuildCollusionExperimentTrust(kN, plan, {}, rng);
  auto poisoned = ApplyCollusion(world.honest, plan, cfg).value();

  AggregationOptions o = Opts(1e-8);
  o.weights.a = 8.0;
  o.weights.b = 2.0;
  o.denominator = DenominatorMode::kAllNodes;
  auto gclr_clean = AggregateGclrVector(g, world.honest, o);
  auto gclr_dirty = AggregateGclrVector(g, poisoned, o);
  auto plain_clean = AggregateGossipTrust(g, world.honest, o);
  auto plain_dirty = AggregateGossipTrust(g, poisoned, o);
  ASSERT_TRUE(gclr_clean.ok() && gclr_dirty.ok() && plain_clean.ok() &&
              plain_dirty.ok());

  RmsErrorOptions ro;
  ro.normalization = RmsNormalization::kRelativeToReference;
  ro.eps = 0.05;
  auto gclr_err = AverageRmsError(HonestRows(gclr_dirty->estimates, plan),
                                  HonestRows(gclr_clean->estimates, plan),
                                  ro);
  auto plain_err = AverageRmsError(HonestRows(plain_dirty->estimates, plan),
                                   HonestRows(plain_clean->estimates, plan),
                                   ro);
  ASSERT_TRUE(gclr_err.ok() && plain_err.ok());
  EXPECT_GT(plain_err.value(), 0.0);
  // Not merely smaller: at least 1.5x better.
  EXPECT_LT(1.5 * gclr_err.value(), plain_err.value());
}

TEST(IntegrationTest, CollusionErrorGrowsWithColluderFraction) {
  Graph g = MakePaGraph(80, 2, 305);
  TrustMatrix honest(80);
  FillTrust(g, &honest, 306);
  AggregationOptions o = Opts(1e-8);
  auto clean = AggregateGclrVector(g, honest, o);
  ASSERT_TRUE(clean.ok());

  RmsErrorOptions ro;
  ro.normalization = RmsNormalization::kAbsolute;
  double prev = -1.0;
  for (double fraction : {0.1, 0.3, 0.6}) {
    CollusionConfig cfg;
    cfg.colluding_fraction = fraction;
    cfg.group_size = 1;
    cfg.seed = 307;
    auto plan = MakeCollusionPlan(80, cfg).value();
    auto poisoned = ApplyCollusion(honest, plan, cfg).value();
    auto dirty = AggregateGclrVector(g, poisoned, o);
    ASSERT_TRUE(dirty.ok());
    auto err = AverageRmsError(dirty->estimates, clean->estimates, ro);
    ASSERT_TRUE(err.ok());
    EXPECT_GT(err.value(), prev) << "fraction " << fraction;
    prev = err.value();
  }
}

TEST(IntegrationTest, GossipEstimateMatchesClosedFormUnderCollusion) {
  // The gossiped unweighted estimate under collusion approximates the
  // closed-form colluded column mean — ties §5.2's algebra to the
  // simulated pipeline.
  Graph g = MakePaGraph(64, 2, 308);
  TrustMatrix honest(64);
  FillTrust(g, &honest, 309);
  CollusionConfig cfg;
  cfg.colluding_fraction = 0.25;
  cfg.group_size = 4;
  cfg.seed = 310;
  auto plan = MakeCollusionPlan(64, cfg).value();
  auto poisoned = ApplyCollusion(honest, plan, cfg).value();

  AggregationOptions o = Opts(1e-9);
  auto run = AggregateGlobalVector(g, poisoned, o);
  ASSERT_TRUE(run.ok());
  auto truth = ExactGlobalMeanOpinatorsVector(poisoned);
  for (NodeId j = 0; j < 64; ++j) {
    EXPECT_NEAR(run->estimates[0][j], truth[j], 0.01) << "target " << j;
  }
}

TEST(IntegrationTest, PaperExampleNetworkConvergesToTableOneAverage) {
  // Table 1 semantics: 10 nodes average their initial values; every node
  // converges to the global mean (~0.42-0.43 in the paper's instance)
  // within a handful of iterations.
  auto g = GeneratePaperExampleNetwork().value();
  std::vector<double> y0 = {0.5653, 0.3091, 0.3629, 0.4765, 0.3080,
                            0.6433, 0.0668, 0.6257, 0.4386, 0.7015};
  std::vector<double> g0(10, 1.0);
  GossipOptions opt;
  opt.xi = 1e-4;
  opt.seed = 11;
  opt.track_trace = true;
  ScalarPushSum engine(&g, opt);
  auto r = engine.Run(y0, g0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  double truth = testing_util::Mean(y0);
  for (double v : r->ratios) EXPECT_NEAR(v, truth, 0.03);
  // The paper's run has all values within ~0.01 of the average by
  // iteration 8; our protocol adds announcement/streak overhead before it
  // *terminates*, but the values themselves must settle just as fast.
  ASSERT_GE(r->trace.size(), 15u);
  for (double v : r->trace[14]) EXPECT_NEAR(v, truth, 0.05);
  EXPECT_LE(r->steps, 80u);
}

TEST(IntegrationTest, FullPipelineDeterministic) {
  Graph g = MakePaGraph(60, 2, 311);
  TrustMatrix t(60);
  FillTrust(g, &t, 312);
  auto a = AggregateGclrVector(g, t, Opts(1e-7));
  auto b = AggregateGclrVector(g, t, Opts(1e-7));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->estimates, b->estimates);
  EXPECT_EQ(a->stats.steps, b->stats.steps);
}

TEST(IntegrationTest, ScalesAcrossNetworkSizes) {
  // Steps grow sub-linearly (polylog) while accuracy holds.
  uint32_t prev_steps = 0;
  for (uint32_t n : {64u, 256u, 1024u}) {
    Graph g = MakePaGraph(n, 2, 313);
    TrustMatrix t(n);
    FillTrust(g, &t, 314);
    auto r = AggregateGlobalSingle(g, t, 1, Opts(1e-6));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->stats.converged);
    double truth = ExactGlobalMeanOpinators(t, 1);
    EXPECT_NEAR(r->estimates[n - 1], truth, 0.02);
    if (prev_steps > 0) {
      EXPECT_LT(r->stats.steps, prev_steps * 4) << "superlinear blowup";
    }
    prev_steps = r->stats.steps;
  }
}

}  // namespace
}  // namespace dgt
