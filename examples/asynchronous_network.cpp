// Asynchronous network example: the same differential gossip running (a)
// in the paper's synchronous rounds, (b) as an event-driven process over
// the section-3 link model (per-node timers, access+backbone+access
// latency), and (c) over a live network where peers leave mid-gossip
// (handing over their gossip pairs) and new peers join.
//
// Run: ./asynchronous_network [num_nodes]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "common/table_writer.h"
#include "gossip/churn_engine.h"
#include "gossip/scalar_engine.h"
#include "graph/pa_generator.h"
#include "net/async_gossip.h"

int main(int argc, char** argv) {
  const uint32_t n = argc > 1 ? std::atoi(argv[1]) : 1000;

  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 61;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  dgt::Rng rng(62);
  std::vector<double> y0(n), g0(n, 1.0);
  for (auto& v : y0) v = rng.NextDouble();
  const double truth =
      std::accumulate(y0.begin(), y0.end(), 0.0) / static_cast<double>(n);

  dgt::TableWriter table("differential gossip in three execution models:");
  table.SetHeader({"model", "activations", "mean |err|", "notes"});

  // (a) Synchronous rounds.
  dgt::GossipOptions sync_opts;
  sync_opts.xi = 1e-5;
  sync_opts.seed = 63;
  dgt::ScalarPushSum sync_engine(&*graph, sync_opts);
  auto sync = sync_engine.Run(y0, g0);
  if (!sync.ok()) return 1;
  double sync_err = 0;
  for (double v : sync->ratios) sync_err += std::fabs(v - truth);
  table.AddRow({"synchronous rounds", std::to_string(sync->steps),
                dgt::FormatDouble(sync_err / n, 6),
                "the paper's discrete-time model"});

  // (b) Event-driven over link latencies.
  dgt::AsyncGossipOptions async_opts;
  async_opts.xi = 1e-5;
  async_opts.seed = 63;
  async_opts.max_time = 100000;
  dgt::AsyncPushSum async_engine(&*graph, async_opts);
  auto async = async_engine.Run(y0, g0);
  if (!async.ok()) return 1;
  double async_err = 0;
  for (double v : async->ratios) async_err += std::fabs(v - truth);
  table.AddRow({"asynchronous (DES)",
                std::to_string(async->max_node_firings) + " firings",
                dgt::FormatDouble(async_err / n, 6),
                "sim time " + dgt::FormatDouble(async->sim_time, 1) +
                    ", " + std::to_string(async->events) + " events"});

  // (c) Live churn: 2% of nodes leave, one joins per step, first 40 steps.
  dgt::ChurnOptions churn;
  churn.leave_prob = 0.002;
  churn.join_rate = 1.0;
  churn.churn_steps = 40;
  dgt::ChurnPushSum churn_engine(*graph, sync_opts, churn);
  auto churned = churn_engine.Run(y0, g0);
  if (!churned.ok()) return 1;
  double churn_err = 0;
  uint32_t live = 0;
  for (dgt::NodeId i = 0; i < churned->ratios.size(); ++i) {
    if (!churned->alive[i]) continue;
    churn_err += std::fabs(churned->ratios[i] - churned->expected_ratio);
    ++live;
  }
  table.AddRow({"live churn", std::to_string(churned->steps),
                dgt::FormatDouble(churn_err / live, 6),
                std::to_string(churned->departures) + " left, " +
                    std::to_string(churned->arrivals) +
                    " joined (pairs handed over)"});

  table.Print(std::cout);
  std::cout << "\nall three settle on the (conserved) average; the paper's "
               "synchronous rounds\nare a modelling convenience, not a "
               "protocol requirement.\n";
  return 0;
}
