// Reputation serving demo — the paper's system run the way observers
// would actually consume it (§4.1.2: consult GCLR scores when choosing
// transaction partners, aggregation in periodic rounds, Delta-gated
// re-pushes between them).
//
// A ReputationService owns the trust state and runs aggregation rounds
// on a background thread; each finished round is published as an
// immutable epoch-numbered snapshot (RCU-style pointer swap). While
// rounds run, reader threads issue >= 1M mixed point / batch / top-k
// queries without ever taking a lock, a writer streams trust updates
// through the bounded MPSC ingest queue, and — because the demo runs in
// paced mode — every reader observes every epoch exactly once, in
// order. At the end the served scores are compared against a batch
// ReputationSystem run with the same seed and update schedule: they
// must be bit-identical.
//
// Run: ./example_reputation_service [num_nodes] [readers] [rounds]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/table_writer.h"
#include "graph/pa_generator.h"
#include "reputation/reputation_system.h"
#include "serve/service.h"
#include "serve/workload.h"
#include "trust/trust_estimator.h"

namespace {

// Deterministic per-epoch trust updates with distinct (observer, target)
// keys, so the batch comparator can replay the exact same schedule.
std::vector<dgt::TrustUpdate> UpdatesForEpoch(uint32_t n, uint64_t epoch) {
  return dgt::MakeDistinctTrustUpdates(n, 3000 + epoch, 64);
}

}  // namespace

int main(int argc, char** argv) {
  const int n_arg = argc > 1 ? std::atoi(argv[1]) : 256;
  const int readers_arg = argc > 2 ? std::atoi(argv[2]) : 4;
  const int rounds_arg = argc > 3 ? std::atoi(argv[3]) : 12;
  // rounds < 1 would select the service's free-running mode and this
  // fixed-budget demo would never terminate.
  if (n_arg < 8 || readers_arg < 1 || rounds_arg < 1) {
    std::fprintf(stderr,
                 "usage: %s [num_nodes >= 8] [readers >= 1] [rounds >= 1]\n",
                 argv[0]);
    return 1;
  }
  const uint32_t n = static_cast<uint32_t>(n_arg);
  const uint32_t num_readers = static_cast<uint32_t>(readers_arg);
  const uint32_t rounds = static_cast<uint32_t>(rounds_arg);
  // Sized so the default configuration issues > 1M queries total.
  const uint32_t iters_per_epoch = 880;

  // Overlay + initial direct trust, as in the quickstart.
  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 42;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  dgt::TrustMatrix trust(n);
  dgt::Rng trust_rng(7);
  dgt::PopulateTrustFromQualities(*graph, 0.05, trust_rng, &trust);

  dgt::ReputationServiceOptions opts;
  opts.system.aggregation.gossip.xi = 1e-3;
  opts.system.base_seed = 19;
  opts.system.aggregation.gossip.num_threads = 2;  // clamped if needed
  opts.num_rounds = rounds;
  opts.paced = true;
  opts.read_shards = num_readers;
  opts.update_queue_capacity = 256;

  std::printf("serving %u nodes: %u background rounds, %u readers, "
              "paced epochs\n",
              n, rounds, num_readers);

  dgt::ReputationService service(&(*graph), trust, opts);
  std::vector<uint32_t> reader_ids(num_readers);
  for (auto& id : reader_ids) id = service.RegisterReader();
  const uint32_t writer_id = service.RegisterReader();
  if (dgt::Status s = service.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }

  std::atomic<uint64_t> total_queries{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::vector<std::vector<uint64_t>> epochs_seen(num_readers);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      dgt::Rng rng(100 + r);
      uint64_t queries = 0;
      uint64_t last = 0;
      for (;;) {
        const uint64_t epoch = service.AwaitEpochAfter(last);
        if (epoch == 0) break;
        if (epoch != last + 1) protocol_errors.fetch_add(1);
        epochs_seen[r].push_back(epoch);
        for (uint32_t iter = 0; iter < iters_per_epoch; ++iter) {
          for (int p = 0; p < 8; ++p) {
            auto res = service.QueryPoint(
                static_cast<dgt::NodeId>(rng.NextBelow(n)),
                static_cast<dgt::NodeId>(rng.NextBelow(n)));
            ++queries;
            if (!res.ok() || res->epoch != epoch) protocol_errors.fetch_add(1);
          }
          std::vector<dgt::NodeId> targets(16);
          for (auto& t : targets) {
            t = static_cast<dgt::NodeId>(rng.NextBelow(n));
          }
          auto batch = service.QueryBatch(
              static_cast<dgt::NodeId>(rng.NextBelow(n)), targets);
          queries += targets.size();
          if (!batch.ok() || batch->epoch != epoch) {
            protocol_errors.fetch_add(1);
          }
          auto topk = service.QueryTopK(
              static_cast<dgt::NodeId>(rng.NextBelow(n)), 5);
          ++queries;
          if (!topk.ok() || topk->epoch != epoch) protocol_errors.fetch_add(1);
        }
        service.AckEpoch(reader_ids[r], epoch);
        last = epoch;
      }
      total_queries.fetch_add(queries);
    });
  }
  std::thread writer([&] {
    uint64_t last = 0;
    for (;;) {
      const uint64_t epoch = service.AwaitEpochAfter(last);
      if (epoch == 0) break;
      if (epoch < rounds) {
        for (const dgt::TrustUpdate& u : UpdatesForEpoch(n, epoch)) {
          if (!service.SubmitTrustUpdate(u.observer, u.target, u.value)
                   .ok()) {
            protocol_errors.fetch_add(1);
          }
        }
      }
      service.AckEpoch(writer_id, epoch);
      last = epoch;
    }
  });
  for (auto& t : readers) t.join();
  writer.join();
  service.AwaitCompletion();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!service.driver_status().ok()) {
    std::fprintf(stderr, "driver: %s\n",
                 service.driver_status().ToString().c_str());
    return 1;
  }

  // Every reader must have walked epochs 1..rounds exactly.
  bool epochs_ok = true;
  for (uint32_t r = 0; r < num_readers; ++r) {
    if (epochs_seen[r].size() != rounds) epochs_ok = false;
    for (size_t e = 0; e < epochs_seen[r].size(); ++e) {
      if (epochs_seen[r][e] != e + 1) epochs_ok = false;
    }
  }

  // Batch comparator: same seeds, same update schedule, no serving.
  dgt::TrustMatrix batch_trust(n);
  dgt::Rng batch_rng(7);
  dgt::PopulateTrustFromQualities(*graph, 0.05, batch_rng, &batch_trust);
  dgt::ReputationSystem batch(&(*graph), &batch_trust, opts.system);
  for (uint64_t e = 1; e <= rounds; ++e) {
    if (e > 1) {
      for (const dgt::TrustUpdate& u : UpdatesForEpoch(n, e - 1)) {
        (void)batch_trust.Set(u.observer, u.target, u.value);
      }
    }
    if (dgt::Status s = batch.RunRound(); !s.ok()) {
      std::fprintf(stderr, "batch: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const auto snapshot = service.Snapshot();
  const bool bit_identical = snapshot->scores == batch.reputations();

  std::printf("served %llu mixed queries in %.2f s (%.0f queries/s) "
              "across %llu epochs\n",
              static_cast<unsigned long long>(total_queries.load()), secs,
              static_cast<double>(total_queries.load()) / secs,
              static_cast<unsigned long long>(service.rounds_completed()));
  std::printf("trust updates folded at round boundaries: %llu "
              "(rejected: %llu)\n",
              static_cast<unsigned long long>(service.updates_folded()),
              static_cast<unsigned long long>(service.updates_rejected()));
  std::printf("every epoch observed exactly once per reader, in order: "
              "%s\n",
              epochs_ok && protocol_errors.load() == 0 ? "yes" : "NO");
  std::printf("final served scores bit-identical to the batch run: %s\n",
              bit_identical ? "yes" : "NO");

  // What an application would do with it: observer 0 picks partners.
  auto topk = service.QueryTopK(0, 5);
  if (topk.ok()) {
    dgt::TableWriter table("\nobserver 0's top-5 transaction partners "
                           "(epoch " +
                           std::to_string(topk->epoch) + "):");
    table.SetHeader({"rank", "peer", "gclr score"});
    for (size_t r = 0; r < topk->ids.size(); ++r) {
      table.AddRow({std::to_string(r + 1), std::to_string(topk->ids[r]),
                    dgt::FormatDouble(topk->scores[r], 4)});
    }
    table.Print(std::cout);
  }

  return epochs_ok && protocol_errors.load() == 0 && bit_identical ? 0 : 1;
}
