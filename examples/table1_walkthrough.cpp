// Walkthrough of the paper's §4.2 example (Fig. 2 / Table 1): a 10-node
// network whose nodes gossip their initial values with differential push
// and converge to the common average within a few iterations. Prints the
// same table shape as Table 1: degree row, k row, then the aggregated
// value at each node after every iteration.

#include <iostream>

#include "common/table_writer.h"
#include "gossip/scalar_engine.h"
#include "graph/generators.h"

int main() {
  auto graph = dgt::GeneratePaperExampleNetwork();
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  // The paper's Table 1 iteration-1 row doubles as the initial values.
  const std::vector<double> y0 = {0.5653, 0.3091, 0.3629, 0.4765, 0.3080,
                                  0.6433, 0.0668, 0.6257, 0.4386, 0.7015};
  std::vector<double> g0(10, 1.0);
  double truth = 0;
  for (double v : y0) truth += v;
  truth /= 10.0;

  dgt::GossipOptions opts;
  opts.strategy = dgt::PushStrategy::kDifferential;
  opts.xi = 1e-3;
  opts.seed = 2014;
  opts.track_trace = true;

  dgt::ScalarPushSum engine(&*graph, opts);
  auto run = engine.Run(y0, g0);
  if (!run.ok()) {
    std::cerr << run.status().ToString() << "\n";
    return 1;
  }

  dgt::TableWriter table(
      "Table 1 reproduction: aggregated value after every iteration");
  std::vector<std::string> header = {"Node"};
  for (int node = 1; node <= 10; ++node) header.push_back(std::to_string(node));
  table.SetHeader(header);

  std::vector<std::string> deg_row = {"degree"};
  std::vector<std::string> k_row = {"k"};
  for (dgt::NodeId u = 0; u < 10; ++u) {
    deg_row.push_back(std::to_string(graph->Degree(u)));
    k_row.push_back(std::to_string(graph->DifferentialPushCount(u)));
  }
  table.AddRow(deg_row);
  table.AddRow(k_row);

  std::vector<std::string> init_row = {"itr=1"};
  for (double v : y0) init_row.push_back(dgt::FormatDouble(v, 4));
  table.AddRow(init_row);
  for (size_t m = 0; m < run->trace.size(); ++m) {
    std::vector<std::string> row = {"itr=" + std::to_string(m + 2)};
    for (double v : run->trace[m]) row.push_back(dgt::FormatDouble(v, 4));
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\ntrue average = " << dgt::FormatDouble(truth, 4)
            << "; every node converged to it within "
            << run->trace.size() + 1 << " iterations (paper: 8)\n";
  return 0;
}
