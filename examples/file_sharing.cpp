// File-sharing scenario: the workload the paper's introduction motivates.
// A population with free riders shares files over a PA overlay; the
// differential-gossip reputation system periodically aggregates trust, and
// providers serve requesters according to reputation. Watch free riders'
// download success collapse while cooperative peers keep being served.
//
// Run: ./file_sharing [num_nodes] [free_rider_fraction]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/table_writer.h"
#include "graph/pa_generator.h"
#include "p2p/file_sharing_sim.h"

int main(int argc, char** argv) {
  const uint32_t n = argc > 1 ? std::atoi(argv[1]) : 128;
  const double free_riders = argc > 2 ? std::atof(argv[2]) : 0.3;

  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 21;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  dgt::Rng rng(22);
  dgt::PopulationMix mix;
  mix.free_rider_fraction = free_riders;
  mix.min_quality = 0.6;
  auto peers = dgt::MakePopulation(n, mix, rng);
  auto fr = dgt::PeersWithStrategy(peers, dgt::PeerStrategy::kFreeRider);
  std::cout << "population: " << n << " peers, " << fr.size()
            << " free riders\n";

  dgt::FileSharingOptions opts;
  opts.num_rounds = 80;
  opts.gossip_every = 10;  // a reputation round every 10 transaction rounds
  opts.serve_threshold = 0.3;
  opts.newcomer_serve_prob = 0.5;
  opts.reputation.aggregation.gossip.xi = 1e-6;
  opts.seed = 23;

  auto sim = dgt::FileSharingSim::Create(&*graph, peers, opts);
  if (!sim.ok()) {
    std::cerr << sim.status().ToString() << "\n";
    return 1;
  }
  if (dgt::Status s = (*sim)->Run(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const auto& report = (*sim)->report();
  dgt::TableWriter table("\ndownload success rate by phase:");
  table.SetHeader({"rounds", "cooperative", "free riders"});
  for (size_t phase = 0; phase < report.rounds.size(); phase += 10) {
    dgt::ClassMetrics coop, frm;
    for (size_t i = phase; i < std::min(phase + 10, report.rounds.size());
         ++i) {
      coop.requests += report.rounds[i].cooperative.requests;
      coop.served += report.rounds[i].cooperative.served;
      frm.requests += report.rounds[i].free_rider.requests;
      frm.served += report.rounds[i].free_rider.served;
    }
    table.AddRow({std::to_string(phase + 1) + "-" +
                      std::to_string(phase + 10),
                  dgt::FormatDouble(coop.SuccessRate(), 3),
                  dgt::FormatDouble(frm.SuccessRate(), 3)});
  }
  table.Print(std::cout);

  std::cout << "\ncumulative: cooperative success="
            << dgt::FormatDouble(report.cooperative.SuccessRate(), 3)
            << " (mean satisfaction "
            << dgt::FormatDouble(report.cooperative.MeanSatisfaction(), 3)
            << "), free rider success="
            << dgt::FormatDouble(report.free_rider.SuccessRate(), 3)
            << "\nreputation rounds run: " << report.gossip_rounds
            << ", last round: " << (*sim)->last_round_stats().steps
            << " gossip steps\n";
  return 0;
}
