// The adversarial collusion onset -> recovery arc, re-run in the
// scenario engine's async event-driven mode: the same phased spec as
// example_adversarial_scenario, but transaction requests arrive on
// per-peer Poisson timers over the paper's §3 link model (access +
// backbone + access latency), gossip boundaries fire at event time
// feeding the live ReputationService's MPSC ingest queue, and every
// completed request/response round trip is accounted against per-link
// latencies — the OverSim-style workload ROADMAP item 3 asks for.
//
// The acceptance arc is the synchronous demo's: collusion onset must
// raise the served-vs-reference RMS error and measurably degrade honest
// peers' service; recovery must bring both back. On top of that the
// async mode must actually have produced latency accounting (nonzero
// round trips with a mean RTT at least the jitter-free floor).
//
// Run: ./example_async_scenario [--smoke] [--out_dir=DIR]

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/bench_output.h"
#include "common/table_writer.h"
#include "graph/pa_generator.h"
#include "scenario/scenario_runner.h"

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint32_t n = smoke ? 48 : 96;
  const uint32_t phase_rounds = smoke ? 8 : 12;
  const uint32_t num_rounds = 3 * phase_rounds;

  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 71;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  dgt::CollusionConfig cfg;
  cfg.colluding_fraction = 0.25;
  cfg.group_size = 4;
  cfg.seed = 72;
  auto plan = dgt::MakeCollusionPlan(n, cfg);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  dgt::ScenarioSpec spec;
  spec.execution = dgt::ExecutionMode::kAsyncEventDriven;
  spec.profiles.resize(n);
  dgt::Rng qrng(73);
  for (dgt::NodeId i = 0; i < n; ++i) {
    spec.profiles[i].strategy = plan->IsColluder(i)
                                    ? dgt::PeerStrategy::kColluder
                                    : dgt::PeerStrategy::kCooperative;
    spec.profiles[i].service_quality = qrng.NextDouble(0.6, 1.0);
  }
  spec.collusion = *plan;
  spec.num_rounds = num_rounds;
  spec.gossip_every = 4;
  spec.reputation.aggregation.gossip.xi = 1e-4;
  spec.compute_rms = true;
  spec.seed = 74;

  dgt::ScenarioPhase pre, attack, recovery;
  pre.name = "pre-attack";
  pre.start_round = 1;
  pre.end_round = phase_rounds;
  attack.name = "collusion";
  attack.start_round = phase_rounds + 1;
  attack.end_round = 2 * phase_rounds;
  attack.collusion_active = true;
  recovery.name = "recovery";
  recovery.start_round = 2 * phase_rounds + 1;
  recovery.end_round = num_rounds;
  spec.phases = {pre, attack, recovery};

  auto runner = dgt::ScenarioRunner::Create(&*graph, spec);
  if (!runner.ok()) {
    std::cerr << runner.status().ToString() << "\n";
    return 1;
  }
  std::printf(
      "async scenario: %u peers (%zu colluders in groups of %u), "
      "%u time units, Poisson rate %.2f req/peer/unit, epoch every %u "
      "units, live serving layer\n",
      n, plan->colluders.size(), cfg.group_size, num_rounds,
      spec.async.request_rate, spec.gossip_every);
  if (dgt::Status s = (*runner)->Run(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const dgt::ScenarioReport& report = (*runner)->report();
  dgt::TableWriter table(
      "\nper-phase view (timer-driven workload over the link model):");
  table.SetHeader({"phase", "windows", "epochs", "coop ok", "colluder ok",
                   "round trips", "mean rtt", "mean rms"});
  for (const auto& phase : report.phases) {
    table.AddRow({phase.name,
                  std::to_string(phase.start_round) + "-" +
                      std::to_string(phase.end_round),
                  std::to_string(phase.epochs),
                  dgt::FormatDouble(phase.cooperative.SuccessRate(), 3),
                  dgt::FormatDouble(phase.colluder.SuccessRate(), 3),
                  std::to_string(phase.async_rtt_count),
                  dgt::FormatDouble(phase.MeanRequestRtt(), 4),
                  dgt::FormatDouble(phase.MeanRms(), 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nsim time %.2f, %llu trust updates through the ingest queue, "
      "%u epochs, mean request rtt %.4f\n",
      report.async_sim_time,
      static_cast<unsigned long long>(report.trust_updates_submitted),
      report.gossip_rounds, report.MeanRequestRtt());

  // Machine-readable timeline for the CI perf/correctness gate.
  std::string out_dir = dgt::EnsureDir(dgt::ResolveOutDir(argc, argv));
  if (!out_dir.empty()) {
    dgt::BenchJsonWriter writer("async_scenario_smoke", out_dir);
    AppendScenarioTimeline(report, {{"n", static_cast<double>(n)}},
                           &writer);
    writer.Write();
  }

  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "ACCEPTANCE FAILED: %s\n", what);
      ok = false;
    }
  };
  const auto& phases = report.phases;
  expect(phases[0].MeanRms() < 1e-9,
         "pre-attack served scores must match the reference");
  expect(phases[1].MeanRms() > phases[0].MeanRms() + 0.05,
         "collusion onset must raise the RMS error");
  expect(phases[2].MeanRms() < phases[1].MeanRms(),
         "recovery must lower the mean RMS error");
  expect(phases[2].LastRms() < phases[1].LastRms(),
         "recovery must lower the last-epoch RMS error");
  expect(phases[1].cooperative.SuccessRate() <
             phases[0].cooperative.SuccessRate(),
         "the attack must measurably degrade honest peers' service");
  expect(phases[2].cooperative.SuccessRate() >
             phases[1].cooperative.SuccessRate(),
         "recovery must restore honest peers' service");
  expect(report.gossip_rounds == num_rounds / spec.gossip_every,
         "every event-time gossip boundary must publish an epoch");
  expect(report.async_rtt_count > 0,
         "the link model must have accounted request round trips");
  const double rtt_floor = 2.0 * (2.0 * spec.async.link.access_latency_min +
                                  spec.async.link.backbone_latency);
  expect(report.MeanRequestRtt() >= rtt_floor,
         "mean RTT must respect the jitter-free latency floor");
  std::printf("%s\n", ok ? "acceptance criteria hold"
                         : "acceptance criteria VIOLATED");
  return ok ? 0 : 1;
}
