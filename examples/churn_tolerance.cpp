// Churn tolerance (the paper's Fig. 4 story): peer-to-peer gossip loses
// packets when nodes leave; the pushing node re-adds the lost share to
// itself so mass is conserved, and convergence degrades only mildly with
// the loss probability.
//
// Run: ./churn_tolerance [num_nodes]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "common/table_writer.h"
#include "gossip/scalar_engine.h"
#include "graph/pa_generator.h"

int main(int argc, char** argv) {
  const uint32_t n = argc > 1 ? std::atoi(argv[1]) : 2000;

  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 51;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  dgt::Rng rng(52);
  std::vector<double> y0(n), g0(n, 1.0);
  for (auto& v : y0) v = rng.NextDouble();
  const double truth =
      std::accumulate(y0.begin(), y0.end(), 0.0) / static_cast<double>(n);

  dgt::TableWriter table("gossip under packet loss, N=" + std::to_string(n) +
                         ", xi=1e-4:");
  table.SetHeader({"loss prob", "steps", "converged", "mean |err|",
                   "msgs/node/step"});
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    dgt::GossipOptions opts;
    opts.strategy = dgt::PushStrategy::kDifferential;
    opts.xi = 1e-4;
    opts.packet_loss_prob = loss;
    opts.seed = 53;
    dgt::ScalarPushSum engine(&*graph, opts);
    auto run = engine.Run(y0, g0);
    if (!run.ok()) {
      std::cerr << run.status().ToString() << "\n";
      return 1;
    }
    double err = 0;
    for (double v : run->ratios) err += std::abs(v - truth);
    err /= n;
    table.AddRow({dgt::FormatDouble(loss, 2), std::to_string(run->steps),
                  run->converged ? "yes" : "no", dgt::FormatDouble(err, 5),
                  dgt::FormatDouble(run->mean_messages_per_active_node_step,
                                    3)});
  }
  table.Print(std::cout);
  std::cout << "\nsteps grow only mildly with loss probability; the lost\n"
               "shares bounce back to the sender, so mass (and hence the\n"
               "average) is preserved exactly (paper Fig. 4).\n";
  return 0;
}
