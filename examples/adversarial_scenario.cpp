// Phased adversarial scenario demo — the scenario engine driving a live
// ReputationService through a collusion onset -> detection -> recovery
// arc (paper §5.2's attack, made time-varying):
//
//   phase 1 "pre-attack": the colluders-to-be behave cooperatively;
//     served scores track the collusion-free reference (RMS ~ 0).
//   phase 2 "collusion": the group forms — colluders serve only group
//     mates and poison their reported rows at every gossip boundary
//     (1 for group mates, an explicit 0 about everyone else). The served
//     scores diverge from the reference (RMS error jumps) and honest
//     peers' service visibly degrades — the §5.2 harm, measured against
//     the *served* epochs rather than a private batch matrix.
//   phase 3 "recovery": the group dissolves; honest reporting resumes,
//     the per-phase RMS error falls back and honest service recovers.
//
// Admission decisions are answered from the service's epoch snapshots
// (never a private batch matrix), trust flows through the MPSC ingest
// queue, and the per-phase timeline is written as BENCH_scenario_smoke
// JSON whose deterministic counters CI gates against a committed
// baseline (ci/bench_baselines/, scripts/check_bench_baseline.py).
//
// Run: ./example_adversarial_scenario [--smoke] [--out_dir=DIR]

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/bench_output.h"
#include "common/table_writer.h"
#include "graph/pa_generator.h"
#include "scenario/scenario_runner.h"

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Smoke = the CI-gated configuration; default is a larger run.
  const uint32_t n = smoke ? 48 : 96;
  const uint32_t phase_rounds = smoke ? 8 : 12;
  const uint32_t num_rounds = 3 * phase_rounds;

  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 71;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }

  // 25% colluders in groups of 4; everyone else cooperative. Free riders
  // would also be suppressed here, but the arc is about the group.
  dgt::CollusionConfig cfg;
  cfg.colluding_fraction = 0.25;
  cfg.group_size = 4;
  cfg.seed = 72;
  auto plan = dgt::MakeCollusionPlan(n, cfg);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  dgt::ScenarioSpec spec;
  spec.profiles.resize(n);
  dgt::Rng qrng(73);
  for (dgt::NodeId i = 0; i < n; ++i) {
    spec.profiles[i].strategy = plan->IsColluder(i)
                                    ? dgt::PeerStrategy::kColluder
                                    : dgt::PeerStrategy::kCooperative;
    spec.profiles[i].service_quality = qrng.NextDouble(0.6, 1.0);
  }
  spec.collusion = *plan;
  spec.num_rounds = num_rounds;
  spec.gossip_every = 4;
  spec.reputation.aggregation.gossip.xi = 1e-4;
  spec.compute_rms = true;
  spec.seed = 74;

  dgt::ScenarioPhase pre, attack, recovery;
  pre.name = "pre-attack";
  pre.start_round = 1;
  pre.end_round = phase_rounds;
  attack.name = "collusion";
  attack.start_round = phase_rounds + 1;
  attack.end_round = 2 * phase_rounds;
  attack.collusion_active = true;
  recovery.name = "recovery";
  recovery.start_round = 2 * phase_rounds + 1;
  recovery.end_round = num_rounds;
  spec.phases = {pre, attack, recovery};

  auto runner = dgt::ScenarioRunner::Create(&*graph, spec);
  if (!runner.ok()) {
    std::cerr << runner.status().ToString() << "\n";
    return 1;
  }
  std::printf("scenario: %u peers (%zu colluders in groups of %u), "
              "%u rounds, epoch every %u rounds, live serving layer\n",
              n, plan->colluders.size(), cfg.group_size, num_rounds,
              spec.gossip_every);
  if (dgt::Status s = (*runner)->Run(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const dgt::ScenarioReport& report = (*runner)->report();
  dgt::TableWriter table("\nper-phase view (served reputations vs. "
                         "collusion-free reference):");
  table.SetHeader({"phase", "rounds", "epochs", "coop ok", "colluder ok",
                   "mean rms", "last rms"});
  for (const auto& phase : report.phases) {
    table.AddRow({phase.name,
                  std::to_string(phase.start_round) + "-" +
                      std::to_string(phase.end_round),
                  std::to_string(phase.epochs),
                  dgt::FormatDouble(phase.cooperative.SuccessRate(), 3),
                  dgt::FormatDouble(phase.colluder.SuccessRate(), 3),
                  dgt::FormatDouble(phase.MeanRms(), 4),
                  dgt::FormatDouble(phase.LastRms(), 4)});
  }
  table.Print(std::cout);
  std::printf("\ntrust updates streamed through the ingest queue: %llu "
              "(epochs served: %u)\n",
              static_cast<unsigned long long>(
                  report.trust_updates_submitted),
              report.gossip_rounds);

  // Machine-readable timeline for the CI perf/correctness gate.
  std::string out_dir = dgt::EnsureDir(dgt::ResolveOutDir(argc, argv));
  if (!out_dir.empty()) {
    dgt::BenchJsonWriter writer("scenario_smoke", out_dir);
    AppendScenarioTimeline(report, {{"n", static_cast<double>(n)}},
                           &writer);
    writer.Write();
  }

  // The demo's acceptance claims, enforced so CI notices regressions:
  // collusion must raise the RMS error well above the pre-attack level
  // and measurably hurt honest peers' service; recovery must bring the
  // error back down and restore honest service.
  const auto& phases = report.phases;
  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "ACCEPTANCE FAILED: %s\n", what);
      ok = false;
    }
  };
  expect(phases[0].MeanRms() < 1e-9,
         "pre-attack served scores must match the reference");
  expect(phases[1].MeanRms() > phases[0].MeanRms() + 0.05,
         "collusion onset must raise the RMS error");
  expect(phases[2].MeanRms() < phases[1].MeanRms(),
         "recovery must lower the mean RMS error");
  expect(phases[2].LastRms() < phases[1].LastRms(),
         "recovery must lower the last-epoch RMS error");
  expect(phases[1].cooperative.SuccessRate() <
             phases[0].cooperative.SuccessRate(),
         "the attack must measurably degrade honest peers' service");
  expect(phases[2].cooperative.SuccessRate() >
             phases[1].cooperative.SuccessRate(),
         "recovery must restore honest peers' service");
  std::printf("%s\n", ok ? "acceptance criteria hold"
                         : "acceptance criteria VIOLATED");
  return ok ? 0 : 1;
}
