// Quickstart: build a power-law P2P overlay, fill it with direct trust
// observations, run the differential gossip reputation aggregation
// (variant 4 — globally calibrated local reputation for every node at
// every node), and compare against the exact centralized reference.
//
// Run: ./quickstart [num_nodes]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/histogram.h"
#include "common/table_writer.h"
#include "graph/graph_stats.h"
#include "graph/pa_generator.h"
#include "reputation/aggregation.h"
#include "reputation/reference.h"
#include "trust/trust_estimator.h"

int main(int argc, char** argv) {
  const uint32_t n = argc > 1 ? std::atoi(argv[1]) : 256;

  // 1. The overlay: preferential-attachment graph with m = 2 (the paper's
  //    topology model for unstructured P2P networks like Gnutella).
  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 42;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::fprintf(stderr, "graph: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  double alpha = dgt::EstimatePowerLawExponent(*graph, 2);
  std::printf("overlay: N=%u, E=%llu, max degree=%u, power-law alpha=%.2f\n",
              graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()),
              dgt::MaxDegree(*graph), alpha);
  std::vector<uint32_t> degrees(n);
  for (dgt::NodeId u = 0; u < n; ++u) degrees[u] = graph->Degree(u);
  auto ks = dgt::PowerLawKsDistance(degrees, 2, alpha);
  if (ks.ok()) {
    std::printf("degree tail vs fitted power law: KS distance %.3f\n",
                ks.value());
  }
  auto hist = dgt::Histogram::Create(2.0, dgt::MaxDegree(*graph) + 1.0, 8);
  if (hist.ok()) {
    for (uint32_t d : degrees) hist->Add(d);
    std::printf("degree histogram (hub-dominated tail = power law):\n");
    hist->Print(std::cout, 32);
  }

  // 2. Direct trust: each edge endpoint rates the other according to its
  //    intrinsic service quality plus observation noise.
  dgt::TrustMatrix trust(n);
  dgt::Rng rng(7);
  auto quality = dgt::PopulateTrustFromQualities(*graph, 0.05, rng, &trust);
  std::printf("trust: %llu direct opinions recorded\n",
              static_cast<unsigned long long>(trust.TotalOpinions()));

  // 3. Differential gossip aggregation of globally calibrated local
  //    reputation (the paper's variant 4).
  dgt::AggregationOptions opts;
  opts.gossip.strategy = dgt::PushStrategy::kDifferential;
  opts.gossip.xi = 1e-6;
  opts.weights.a = 4.0;  // w = a^(b t): trusted neighbours weigh up to 4x
  opts.weights.b = 1.0;
  auto result = dgt::AggregateGclrVector(*graph, trust, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "aggregation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("gossip: converged=%s in %u steps, %.2f msgs/node/step\n",
              result->stats.converged ? "yes" : "no", result->stats.steps,
              result->stats.mean_messages_per_active_node_step);

  // 4. Accuracy against the exact centralized GCLR: the gossip must land
  //    on the same values the closed-form formula gives every observer.
  double err_vs_exact = 0.0;
  uint64_t count = 0;
  for (dgt::NodeId i = 0; i < n; ++i) {
    auto w = dgt::WeightTable::Build(trust, i, opts.weights);
    if (!w.ok()) continue;
    for (dgt::NodeId j = 0; j < n; ++j) {
      double exact = dgt::ExactGclr(trust, *graph, *w, j,
                                    dgt::DenominatorMode::kOpinators);
      err_vs_exact += std::abs(result->estimates[i][j] - exact);
      ++count;
    }
  }
  std::printf("accuracy: mean |gossip estimate - exact GCLR| = %.5f over "
              "%llu pairs\n",
              err_vs_exact / count, static_cast<unsigned long long>(count));

  // 5. Show a few nodes the way an application would consume the API.
  dgt::TableWriter table("\nsample of node 0's reputation view:");
  table.SetHeader({"target", "intrinsic q", "node0 estimate", "exact GCLR"});
  auto w0 = dgt::WeightTable::Build(trust, 0, opts.weights);
  for (dgt::NodeId j = 1; j <= 8; ++j) {
    double exact = dgt::ExactGclr(trust, *graph, *w0, j,
                                  dgt::DenominatorMode::kOpinators);
    table.AddRow({std::to_string(j), dgt::FormatDouble(quality[j], 3),
                  dgt::FormatDouble(result->estimates[0][j], 3),
                  dgt::FormatDouble(exact, 3)});
  }
  table.Print(std::cout);
  return 0;
}
