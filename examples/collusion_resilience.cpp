// Collusion resilience (the paper's §5.2 / Figs. 5-6 story): colluders
// report 1 about group mates and 0 about everyone else. Differential
// gossip trust weighs trusted neighbours' direct reports, shrinking the
// collusion-induced error by N / (N + sum(w - 1)) (eq. 17) versus the
// plain GossipTrust-style global aggregation.
//
// Run: ./collusion_resilience [num_nodes]

#include <cstdlib>
#include <iostream>

#include "baselines/gossip_trust.h"
#include "collusion/analysis.h"
#include "collusion/collusion_model.h"
#include "collusion/rms_error.h"
#include "common/table_writer.h"
#include "graph/pa_generator.h"
#include "reputation/aggregation.h"
#include "trust/trust_estimator.h"

int main(int argc, char** argv) {
  const uint32_t n = argc > 1 ? std::atoi(argv[1]) : 192;

  dgt::PaOptions pa;
  pa.num_nodes = n;
  pa.edges_per_node = 2;
  pa.seed = 31;
  auto graph = dgt::GeneratePreferentialAttachment(pa);
  if (!graph.ok()) {
    std::cerr << graph.status().ToString() << "\n";
    return 1;
  }
  dgt::AggregationOptions opts;
  opts.gossip.xi = 1e-7;
  opts.weights.a = 8.0;  // w = 8^(2t): trusted partners count up to 64x
  opts.weights.b = 2.0;
  opts.denominator = dgt::DenominatorMode::kAllNodes;

  dgt::RmsErrorOptions rms;
  rms.normalization = dgt::RmsNormalization::kRelativeToReference;
  rms.eps = 0.05;

  auto honest_rows = [](const std::vector<std::vector<double>>& est,
                        const dgt::CollusionPlan& plan) {
    std::vector<std::vector<double>> out;
    for (dgt::NodeId i = 0; i < est.size(); ++i) {
      if (!plan.IsColluder(i)) out.push_back(est[i]);
    }
    return out;
  };

  dgt::TableWriter table(
      "average RMS reputation error at honest observers under collusion:");
  table.SetHeader({"% colluders", "plain gossip", "differential gossip",
                   "predicted shrink (eq. 17)"});
  for (double fraction : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    dgt::CollusionConfig cfg;
    cfg.colluding_fraction = fraction;
    cfg.group_size = 4;
    cfg.seed = 33;
    auto plan = dgt::MakeCollusionPlan(n, cfg);
    if (!plan.ok()) continue;
    dgt::Rng rng(32);
    dgt::ExperimentTrust world =
        dgt::BuildCollusionExperimentTrust(n, *plan, {}, rng);
    auto poisoned = dgt::ApplyCollusion(world.honest, *plan, cfg);
    if (!poisoned.ok()) continue;

    auto gclr_clean = dgt::AggregateGclrVector(*graph, world.honest, opts);
    auto plain_clean = dgt::AggregateGossipTrust(*graph, world.honest, opts);
    auto gclr_dirty = dgt::AggregateGclrVector(*graph, *poisoned, opts);
    auto plain_dirty = dgt::AggregateGossipTrust(*graph, *poisoned, opts);
    if (!gclr_clean.ok() || !plain_clean.ok() || !gclr_dirty.ok() ||
        !plain_dirty.ok()) {
      continue;
    }

    auto gclr_err =
        dgt::AverageRmsError(honest_rows(gclr_dirty->estimates, *plan),
                             honest_rows(gclr_clean->estimates, *plan), rms);
    auto plain_err =
        dgt::AverageRmsError(honest_rows(plain_dirty->estimates, *plan),
                             honest_rows(plain_clean->estimates, *plan),
                             rms);
    if (!gclr_err.ok() || !plain_err.ok()) continue;

    // eq. (17)'s predicted attenuation for a median honest observer.
    dgt::NodeId obs = 0;
    while (plan->IsColluder(obs)) ++obs;
    auto w = dgt::WeightTable::Build(world.honest, obs, opts.weights);
    double shrink =
        static_cast<double>(n) / (n + w->TotalExcessWeight());

    table.AddRow({dgt::FormatDouble(100 * fraction, 0),
                  dgt::FormatDouble(plain_err.value(), 4),
                  dgt::FormatDouble(gclr_err.value(), 4),
                  dgt::FormatDouble(shrink, 3)});
  }
  table.Print(std::cout);
  std::cout << "\ndifferential gossip trust keeps the error below the plain\n"
               "gossip baseline at every collusion level (paper Figs. 5-6).\n";
  return 0;
}
